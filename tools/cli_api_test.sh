#!/usr/bin/env bash
# End-to-end CLI acceptance for the unified engine API (ctest label `api`):
# an ExplicitWorkload (the paper's Fig. 1 matrix) runs the full dense
# store-and-serve loop — design --save -> release --store (ledger charged)
# -> serve — plus the strict --engine parsing contract and the ledger's
# exit-3 refusal. Usage: cli_api_test.sh <path-to-dpmm_cli>
set -euo pipefail

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT
STORE="${WORK}/store"
fail() { echo "FAIL: $*" >&2; exit 1; }

# An 8-cell histogram over the Fig. 1 domain (gender x gpa = 2 x 4).
DATA="${WORK}/fig1.csv"
{
  echo "# domain: 2,4"
  for i in 0 1 2 3 4 5 6 7; do echo "${i},$((10 + i * 3))"; done
} > "${DATA}"

echo "== strict --engine parsing =="
"${CLI}" release --data "${DATA}" --workload fig1 --engine bogus \
  >/dev/null 2>&1 && fail "--engine bogus must exit nonzero"
rc=0; "${CLI}" release --data "${DATA}" --workload fig1 --engine bogus \
  >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "--engine bogus must exit 2, got ${rc}"
rc=0; "${CLI}" release --data "${DATA}" --workload fig1 --engine dense \
  --dense 1 >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "--engine + --dense together must exit 2, got ${rc}"

echo "== deprecated --dense alias still releases =="
"${CLI}" release --data "${DATA}" --workload fig1 --dense 1 \
  --epsilon 0.5 --out "${WORK}/alias.csv" 2> "${WORK}/alias.err" \
  || fail "release --dense 1 failed"
grep -q "deprecated" "${WORK}/alias.err" || fail "missing deprecation note"

echo "== dense design --save =="
"${CLI}" design --domain 2,4 --workload fig1 --save "${STORE}" \
  > "${WORK}/design.out" || fail "dense design --save failed"
grep -q "engine dense" "${WORK}/design.out" || fail "design did not report the dense engine"

echo "== release --store against the dense artifact =="
"${CLI}" release --data "${DATA}" --workload fig1 --store "${STORE}" \
  --dataset fig1 --epsilon 0.4 --delta 1e-4 \
  --total-epsilon 0.5 --total-delta 2e-4 --seed 7 \
  > "${WORK}/release.csv" 2> "${WORK}/release.err" \
  || fail "release --store failed"
grep -q "reusing stored strategy" "${WORK}/release.err" \
  || fail "release did not reuse the stored dense strategy"
grep -q "stored release 0" "${WORK}/release.err" || fail "release not stored"

echo "== explicit --engine contradicting the stored engine exits 2 =="
rc=0; "${CLI}" release --data "${DATA}" --workload fig1 --store "${STORE}" \
  --dataset fig1 --epsilon 0.01 --engine kron >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "--engine kron on a dense store must exit 2, got ${rc}"

echo "== ledger refusal exits 3 =="
rc=0; "${CLI}" release --data "${DATA}" --workload fig1 --store "${STORE}" \
  --dataset fig1 --epsilon 0.4 --delta 1e-4 >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 3 ] || fail "over-budget release must exit 3, got ${rc}"

echo "== serve from the dense artifact =="
printf '*\nA1 = 0 AND A2 <= 1\nquit\n' | \
  "${CLI}" serve --store "${STORE}" --domain 2,4 --workload fig1 \
  > "${WORK}/serve.out" 2> "${WORK}/serve.err" || fail "serve failed"
grep -q "engine dense" "${WORK}/serve.err" || fail "serve did not report the dense engine"
[ "$(grep -c '±' "${WORK}/serve.out")" -eq 2 ] || fail "expected 2 served answers"
# Sanity: the total query's answer is a finite number with a finite bar.
awk 'NR==1 { if ($1+0 != $1 || $3+0 != $3) exit 1 }' "${WORK}/serve.out" \
  || fail "served answer not numeric"

echo "== ledger lock contention exits 4 =="
# A background `ledger hold` owns the dataset's exclusive lock; a release
# (and a ledger show, whose shared lock also waits out an exclusive holder)
# with a short timeout must give up with the distinct Unavailable code.
"${CLI}" ledger hold --store "${STORE}" --dataset fig1 --hold-ms 3000 \
  2> "${WORK}/hold.err" &
HOLD_PID=$!
for _ in $(seq 50); do
  grep -q "holding ledger lock" "${WORK}/hold.err" 2>/dev/null && break
  sleep 0.1
done
grep -q "holding ledger lock" "${WORK}/hold.err" || fail "ledger hold never acquired"
rc=0; "${CLI}" release --data "${DATA}" --workload fig1 --store "${STORE}" \
  --dataset fig1 --epsilon 0.05 --delta 1e-5 --lock-timeout-ms 200 \
  >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 4 ] || fail "release against a held lock must exit 4, got ${rc}"
rc=0; "${CLI}" ledger show --store "${STORE}" --dataset fig1 \
  --lock-timeout-ms 200 >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 4 ] || fail "ledger show against a held lock must exit 4, got ${rc}"
wait "${HOLD_PID}" || fail "ledger hold exited nonzero"

echo "== crash mid-charge, then idempotent retry charges exactly once =="
# DPMM_FS_CRASH_AFTER=2 kills the ledger's filesystem seam inside the WAL
# append (after open + write, at the fsync): the charge is not acknowledged.
# The retry with the same --charge-id must land the charge exactly once —
# whether or not the interrupted append's record survived.
rc=0; DPMM_FS_CRASH_AFTER=2 "${CLI}" release --data "${DATA}" \
  --workload fig1 --store "${STORE}" --dataset crashy --epsilon 0.1 \
  --delta 1e-5 --total-epsilon 0.5 --total-delta 1e-4 \
  --charge-id retry-me >/dev/null 2>&1 || rc=$?
[ "${rc}" -ne 0 ] || fail "release with an injected crash must exit nonzero"
"${CLI}" ledger recover --store "${STORE}" --dataset crashy >/dev/null 2>&1 \
  || true  # truncates any torn tail; NotFound is fine if nothing landed
"${CLI}" release --data "${DATA}" --workload fig1 --store "${STORE}" \
  --dataset crashy --epsilon 0.1 --delta 1e-5 --total-epsilon 0.5 \
  --total-delta 1e-4 --charge-id retry-me >/dev/null 2>&1 \
  || fail "retry of the crashed charge failed"
"${CLI}" ledger show --store "${STORE}" --dataset crashy \
  > "${WORK}/crashy.out" || fail "ledger show after recovery failed"
grep -q "^charges  1$" "${WORK}/crashy.out" \
  || fail "crashed+retried charge must appear exactly once: $(cat "${WORK}/crashy.out")"
grep -q "^spent    eps=0.1" "${WORK}/crashy.out" \
  || fail "spent must reflect exactly one charge: $(cat "${WORK}/crashy.out")"

echo "== strategy file round-trip through release --strategy =="
"${CLI}" design --domain 2,4 --workload fig1 --out "${WORK}/fig1.strategy" \
  >/dev/null || fail "design --out failed"
"${CLI}" release --data "${DATA}" --workload fig1 \
  --strategy "${WORK}/fig1.strategy" --epsilon 0.5 \
  --out "${WORK}/answers.csv" >/dev/null || fail "release --strategy failed"
[ -s "${WORK}/answers.csv" ] || fail "no answers written"

echo "== stats --json round-trips a JSON parser =="
"${CLI}" stats --json 1 > "${WORK}/stats.json" || fail "stats --json failed"
python3 - "${WORK}/stats.json" <<'PYEOF' || fail "stats --json is not valid JSON with the standard inventory"
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert set(d) == {"counters", "gauges", "histograms"}, sorted(d)
assert "dpmm.serve.wal.appends" in d["counters"]
assert "dpmm.util.thread_pool.queue_depth" in d["gauges"]
h = d["histograms"]["dpmm.serve.answer_engine.query_ns"]
assert set(h) == {"count", "sum", "p50", "p95", "p99", "max"}, sorted(h)
PYEOF
"${CLI}" stats > "${WORK}/stats.out" || fail "stats table failed"
grep -q "dpmm.serve.budget_ledger.charges" "${WORK}/stats.out" \
  || fail "stats table missing the standard inventory"

echo "== DPMM_STATS=1 shows nonzero counters across the pipeline =="
# Each stage must prove its own subsystems counted in-process: design the
# solver, release the ledger/WAL/lock/store, serve the engine and parser.
DPMM_STATS=1 "${CLI}" design --domain 2,4 --workload fig1 \
  --out "${WORK}/stats.strategy" >/dev/null 2> "${WORK}/design_stats.err" \
  || fail "design under DPMM_STATS failed"
grep -q "dpmm.optimize.dual_solver.solves " "${WORK}/design_stats.err" \
  || fail "design did not count dual-solver solves"
DPMM_STATS=1 "${CLI}" release --data "${DATA}" --workload fig1 \
  --store "${STORE}" --dataset obs --epsilon 0.05 --delta 1e-5 \
  --total-epsilon 0.5 --total-delta 1e-4 \
  >/dev/null 2> "${WORK}/release_stats.err" \
  || fail "release under DPMM_STATS failed"
for metric in dpmm.serve.budget_ledger.charges dpmm.serve.wal.appends \
    dpmm.serve.file_lock.acquires dpmm.serve.store.artifact_writes \
    dpmm.mechanism.matrix_mechanism.releases; do
  grep -q "${metric} " "${WORK}/release_stats.err" \
    || fail "release did not count ${metric}"
done
printf '*\n\\stats\nA1 = 0; A1 = 1\nquit\n' | \
  DPMM_STATS=1 "${CLI}" serve --store "${STORE}" --domain 2,4 \
  --workload fig1 --stats-every 1 \
  > "${WORK}/serve_stats.out" 2> "${WORK}/serve_stats.err" \
  || fail "serve under DPMM_STATS failed"
for metric in dpmm.serve.answer_engine.queries dpmm.query.predicate.parses \
    dpmm.serve.store.artifact_reads; do
  grep -q "${metric} " "${WORK}/serve_stats.err" \
    || fail "serve did not count ${metric}"
done
# The \stats meta-command plus the exit dump -> at least two dumps, and
# --stats-every 1 -> at least one periodic summary line.
[ "$(grep -c -- "-- metrics --" "${WORK}/serve_stats.err")" -ge 2 ] \
  || fail "\\stats meta-command did not dump metrics"
grep -q "^stats: served=" "${WORK}/serve_stats.err" \
  || fail "--stats-every did not emit the periodic stats line"
[ "$(grep -c '±' "${WORK}/serve_stats.out")" -eq 3 ] \
  || fail "stats surfaces must not disturb the answer stream"

echo "== DPMM_TRACE writes a loadable Chrome trace =="
printf '*\nquit\n' | DPMM_TRACE="${WORK}/trace.json" "${CLI}" serve \
  --store "${STORE}" --domain 2,4 --workload fig1 >/dev/null 2>&1 \
  || fail "serve under DPMM_TRACE failed"
python3 - "${WORK}/trace.json" <<'PYEOF' || fail "DPMM_TRACE output is not a valid trace_event file"
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
events = d["traceEvents"]
assert events, "no trace events recorded"
for e in events:
    assert e["ph"] == "X" and e["dur"] >= 0, e
assert any(e["name"] == "AnswerPredicate" for e in events)
PYEOF

echo "cli_api_test: all green"
