#!/usr/bin/env bash
# End-to-end CLI acceptance for the unified engine API (ctest label `api`):
# an ExplicitWorkload (the paper's Fig. 1 matrix) runs the full dense
# store-and-serve loop — design --save -> release --store (ledger charged)
# -> serve — plus the strict --engine parsing contract and the ledger's
# exit-3 refusal. Usage: cli_api_test.sh <path-to-dpmm_cli>
set -euo pipefail

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT
STORE="${WORK}/store"
fail() { echo "FAIL: $*" >&2; exit 1; }

# An 8-cell histogram over the Fig. 1 domain (gender x gpa = 2 x 4).
DATA="${WORK}/fig1.csv"
{
  echo "# domain: 2,4"
  for i in 0 1 2 3 4 5 6 7; do echo "${i},$((10 + i * 3))"; done
} > "${DATA}"

echo "== strict --engine parsing =="
"${CLI}" release --data "${DATA}" --workload fig1 --engine bogus \
  >/dev/null 2>&1 && fail "--engine bogus must exit nonzero"
rc=0; "${CLI}" release --data "${DATA}" --workload fig1 --engine bogus \
  >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "--engine bogus must exit 2, got ${rc}"
rc=0; "${CLI}" release --data "${DATA}" --workload fig1 --engine dense \
  --dense 1 >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "--engine + --dense together must exit 2, got ${rc}"

echo "== deprecated --dense alias still releases =="
"${CLI}" release --data "${DATA}" --workload fig1 --dense 1 \
  --epsilon 0.5 --out "${WORK}/alias.csv" 2> "${WORK}/alias.err" \
  || fail "release --dense 1 failed"
grep -q "deprecated" "${WORK}/alias.err" || fail "missing deprecation note"

echo "== dense design --save =="
"${CLI}" design --domain 2,4 --workload fig1 --save "${STORE}" \
  > "${WORK}/design.out" || fail "dense design --save failed"
grep -q "engine dense" "${WORK}/design.out" || fail "design did not report the dense engine"

echo "== release --store against the dense artifact =="
"${CLI}" release --data "${DATA}" --workload fig1 --store "${STORE}" \
  --dataset fig1 --epsilon 0.4 --delta 1e-4 \
  --total-epsilon 0.5 --total-delta 2e-4 --seed 7 \
  > "${WORK}/release.csv" 2> "${WORK}/release.err" \
  || fail "release --store failed"
grep -q "reusing stored strategy" "${WORK}/release.err" \
  || fail "release did not reuse the stored dense strategy"
grep -q "stored release 0" "${WORK}/release.err" || fail "release not stored"

echo "== explicit --engine contradicting the stored engine exits 2 =="
rc=0; "${CLI}" release --data "${DATA}" --workload fig1 --store "${STORE}" \
  --dataset fig1 --epsilon 0.01 --engine kron >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 2 ] || fail "--engine kron on a dense store must exit 2, got ${rc}"

echo "== ledger refusal exits 3 =="
rc=0; "${CLI}" release --data "${DATA}" --workload fig1 --store "${STORE}" \
  --dataset fig1 --epsilon 0.4 --delta 1e-4 >/dev/null 2>&1 || rc=$?
[ "${rc}" -eq 3 ] || fail "over-budget release must exit 3, got ${rc}"

echo "== serve from the dense artifact =="
printf '*\nA1 = 0 AND A2 <= 1\nquit\n' | \
  "${CLI}" serve --store "${STORE}" --domain 2,4 --workload fig1 \
  > "${WORK}/serve.out" 2> "${WORK}/serve.err" || fail "serve failed"
grep -q "engine dense" "${WORK}/serve.err" || fail "serve did not report the dense engine"
[ "$(grep -c '±' "${WORK}/serve.out")" -eq 2 ] || fail "expected 2 served answers"
# Sanity: the total query's answer is a finite number with a finite bar.
awk 'NR==1 { if ($1+0 != $1 || $3+0 != $3) exit 1 }' "${WORK}/serve.out" \
  || fail "served answer not numeric"

echo "== strategy file round-trip through release --strategy =="
"${CLI}" design --domain 2,4 --workload fig1 --out "${WORK}/fig1.strategy" \
  >/dev/null || fail "design --out failed"
"${CLI}" release --data "${DATA}" --workload fig1 \
  --strategy "${WORK}/fig1.strategy" --epsilon 0.5 \
  --out "${WORK}/answers.csv" >/dev/null || fail "release --strategy failed"
[ -s "${WORK}/answers.csv" ] || fail "no answers written"

echo "cli_api_test: all green"
