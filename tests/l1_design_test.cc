// Tests for the eps-DP (L1) weighting variant of Sec. 3.5.
#include <cmath>

#include <gtest/gtest.h>

#include "mechanism/error.h"
#include "optimize/l1_design.h"
#include "strategy/fourier.h"
#include "strategy/wavelet.h"
#include "workload/marginal_workloads.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

constexpr double kEps = 0.5;

TEST(L1Design, SensitivityNormalizedToOne) {
  Domain dom({16});
  AllRangeWorkload w(dom);
  auto r =
      optimize::L1WeightedDesign(w.Gram(), HaarMatrix1D(16)).ValueOrDie();
  EXPECT_NEAR(r.strategy.L1Sensitivity(), 1.0, 1e-6);
}

TEST(L1Design, ImprovesWaveletOnAllRange) {
  // Sec. 3.5: weighting the wavelet basis improves the plain wavelet under
  // eps-DP (paper reports a factor ~1.1 on all ranges).
  Domain dom({32});
  AllRangeWorkload w(dom);
  const linalg::Matrix gram = w.Gram();
  Strategy plain = WaveletStrategy(dom);
  auto weighted = optimize::L1WeightedDesign(gram, plain.matrix()).ValueOrDie();
  const double before = LaplaceStrategyError(gram, w.num_queries(), plain,
                                             kEps, ErrorConvention::kPerQuery);
  const double after =
      LaplaceStrategyError(gram, w.num_queries(), weighted.strategy, kEps,
                           ErrorConvention::kPerQuery);
  EXPECT_LT(after, before);
  EXPECT_GT(before / after, 1.02);  // visible improvement
}

TEST(L1Design, ImprovesFourierOnLowOrderMarginals) {
  Domain dom({4, 4, 2});
  MarginalsWorkload w = MarginalsWorkload::AllKWay(dom, 1);
  const linalg::Matrix gram = w.Gram();
  // The full Fourier basis is invertible; weight it for this workload.
  linalg::Matrix basis = FullFourierBasis(dom);
  auto weighted = optimize::L1WeightedDesign(gram, basis).ValueOrDie();
  Strategy plain(basis, "Fourier-full");
  const double before = LaplaceStrategyError(gram, w.num_queries(), plain,
                                             kEps, ErrorConvention::kPerQuery);
  const double after =
      LaplaceStrategyError(gram, w.num_queries(), weighted.strategy, kEps,
                           ErrorConvention::kPerQuery);
  EXPECT_LT(after, before);
}

TEST(L1Design, PredictedObjectiveMatchesMeasuredError) {
  Domain dom({12});
  AllRangeWorkload w(dom);
  const linalg::Matrix gram = w.Gram();
  auto r = optimize::L1WeightedDesign(gram, HaarMatrix1D(12)).ValueOrDie();
  const double predicted =
      std::sqrt(2.0 / (kEps * kEps) * r.predicted_objective);
  const double measured = LaplaceStrategyError(
      gram, w.num_queries(), r.strategy, kEps, ErrorConvention::kTotal);
  EXPECT_NEAR(measured, predicted, 2e-3 * predicted);
}

TEST(L1Design, OrthonormalRowsVariantImprovesRestrictedFourier) {
  // Sec. 3.5 Fourier measurement: weight the (non-square) restricted
  // Fourier basis for a low-order marginal workload.
  Domain dom({4, 4, 2});
  MarginalsWorkload w = MarginalsWorkload::AllKWay(dom, 1);
  Strategy plain = FourierStrategy(dom, AllSubsetsOfSize(3, 1));
  const linalg::Matrix gram = w.Gram();
  auto weighted =
      optimize::L1WeightedDesignOrthonormal(gram, plain.matrix()).ValueOrDie();
  const double before = LaplaceStrategyError(gram, w.num_queries(), plain,
                                             kEps, ErrorConvention::kPerQuery);
  const double after =
      LaplaceStrategyError(gram, w.num_queries(), weighted.strategy, kEps,
                           ErrorConvention::kPerQuery);
  EXPECT_LT(after, before);
  EXPECT_NEAR(weighted.strategy.L1Sensitivity(), 1.0, 1e-6);
}

TEST(L1Design, OrthonormalVariantMatchesGeneralOnSquareBasis) {
  // On a square orthonormal basis both construction routes must agree.
  Domain dom({16});
  AllRangeWorkload w(dom);
  const linalg::Matrix gram = w.Gram();
  const linalg::Matrix basis = FullFourierBasis(dom);
  auto general = optimize::L1WeightedDesign(gram, basis).ValueOrDie();
  auto ortho =
      optimize::L1WeightedDesignOrthonormal(gram, basis).ValueOrDie();
  EXPECT_NEAR(general.predicted_objective, ortho.predicted_objective,
              1e-3 * general.predicted_objective);
}

TEST(L1Design, GapCertificate) {
  Domain dom({24});
  AllRangeWorkload w(dom);
  auto r =
      optimize::L1WeightedDesign(w.Gram(), HaarMatrix1D(24)).ValueOrDie();
  EXPECT_LT(r.duality_gap, 1e-5);
}

}  // namespace
}  // namespace dpmm
