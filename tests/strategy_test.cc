// Tests for the baseline strategies: wavelet, hierarchical, Fourier and
// DataCube/BMAX.
#include <cmath>
#include <cstdio>
#include <limits>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/qr.h"
#include "strategy/datacube.h"
#include "strategy/fourier.h"
#include "strategy/hierarchical.h"
#include "strategy/io.h"
#include "strategy/strategy.h"
#include "strategy/wavelet.h"
#include "workload/builders.h"
#include "workload/marginal_workloads.h"

namespace dpmm {
namespace {

using linalg::Matrix;

TEST(IdentityStrategy, Basics) {
  Strategy s = IdentityStrategy(5);
  EXPECT_EQ(s.num_queries(), 5u);
  EXPECT_DOUBLE_EQ(s.L2Sensitivity(), 1.0);
  EXPECT_DOUBLE_EQ(s.L1Sensitivity(), 1.0);
}

TEST(Wavelet, MatchesFig2For8Cells) {
  Matrix expect = Matrix::FromRows({{1, 1, 1, 1, 1, 1, 1, 1},
                                    {1, 1, 1, 1, -1, -1, -1, -1},
                                    {1, 1, -1, -1, 0, 0, 0, 0},
                                    {0, 0, 0, 0, 1, 1, -1, -1},
                                    {1, -1, 0, 0, 0, 0, 0, 0},
                                    {0, 0, 1, -1, 0, 0, 0, 0},
                                    {0, 0, 0, 0, 1, -1, 0, 0},
                                    {0, 0, 0, 0, 0, 0, 1, -1}});
  EXPECT_EQ(HaarMatrix1D(8).MaxAbsDiff(expect), 0.0);
}

TEST(Wavelet, SensitivityIsSqrtOneLogN) {
  // Each cell appears in 1 + log2(d) rows with +-1 entries.
  for (std::size_t d : {2, 4, 8, 16, 64}) {
    Strategy s = WaveletStrategy(Domain::OneDim(d));
    EXPECT_NEAR(s.L2Sensitivity(), std::sqrt(1.0 + std::log2(d)), 1e-12) << d;
  }
}

TEST(Wavelet, AnswersAllRangesExactly) {
  // Every range query must lie in the wavelet's row space.
  Matrix ranges = builders::AllRangeMatrix1D(16);
  EXPECT_LT(linalg::RowSpaceResidual(ranges, HaarMatrix1D(16)), 1e-8);
}

TEST(Wavelet, NonPowerOfTwoStillSpansRanges) {
  Matrix h = HaarMatrix1D(11);
  EXPECT_EQ(h.cols(), 11u);
  EXPECT_EQ(h.rows(), 11u);  // complete basis: total + d-1 details
  Matrix ranges = builders::AllRangeMatrix1D(11);
  EXPECT_LT(linalg::RowSpaceResidual(ranges, h), 1e-8);
}

TEST(Wavelet, MultiDimKronecker) {
  Domain d({4, 8});
  Strategy s = WaveletStrategy(d);
  EXPECT_EQ(s.num_cells(), 32u);
  const double expect =
      std::sqrt((1.0 + std::log2(4)) * (1.0 + std::log2(8)));
  EXPECT_NEAR(s.L2Sensitivity(), expect, 1e-12);
}

TEST(Hierarchical, RowCountAndStructure) {
  Matrix h = HierarchicalMatrix1D(8);
  EXPECT_EQ(h.rows(), 15u);  // complete binary tree over 8 leaves
  // Root is the total query.
  for (std::size_t j = 0; j < 8; ++j) EXPECT_EQ(h(0, j), 1.0);
  // Leaves are the unit queries (last 8 rows).
  for (std::size_t r = 7; r < 15; ++r) {
    double sum = 0;
    for (std::size_t j = 0; j < 8; ++j) sum += h(r, j);
    EXPECT_EQ(sum, 1.0);
  }
}

TEST(Hierarchical, SensitivityIsSqrtDepth) {
  // Each cell appears once per level: depth = 1 + ceil(log2 d).
  Strategy s = HierarchicalStrategy(Domain::OneDim(16));
  EXPECT_NEAR(s.L2Sensitivity(), std::sqrt(5.0), 1e-12);
}

TEST(Hierarchical, SpansAllRanges) {
  EXPECT_LT(linalg::RowSpaceResidual(builders::AllRangeMatrix1D(13),
                                     HierarchicalMatrix1D(13)),
            1e-8);
}

TEST(Hierarchical, BranchingFactorFour) {
  Matrix h = HierarchicalMatrix1D(16, 4);
  // Levels: 1 + 4 + 16 nodes.
  EXPECT_EQ(h.rows(), 21u);
}

TEST(DctBasis, Orthonormal) {
  for (std::size_t d : {2, 3, 8, 16}) {
    Matrix b = DctBasis(d);
    EXPECT_LT(linalg::MatMulNT(b, b).MaxAbsDiff(Matrix::Identity(d)), 1e-10);
  }
}

TEST(Fourier, AnswersTargetMarginalsExactly) {
  Domain d({4, 3, 2});
  auto sets = AllSubsetsOfSize(3, 2);
  Strategy f = FourierStrategy(d, sets);
  MarginalsWorkload w(d, sets, MarginalsWorkload::Flavor::kMarginal);
  EXPECT_LT(linalg::RowSpaceResidual(w.Materialize(), f.matrix()), 1e-8);
}

TEST(Fourier, RowCountMatchesSupportEnumeration) {
  Domain d({4, 3});
  // 2-way marginal: supports {}, {0}, {1}, {0,1} ->
  // 1 + 3 + 2 + 6 = 12 rows.
  Strategy f = FourierStrategy(d, {AttrSet{0, 1}});
  EXPECT_EQ(f.num_queries(), 12u);
}

TEST(Fourier, DroppingUnneededVectorsReducesSensitivity) {
  Domain d({8, 8});
  Strategy one_way = FourierStrategy(d, AllSubsetsOfSize(2, 1));
  Strategy full = FourierStrategy(d, {AttrSet{0, 1}});
  EXPECT_LT(one_way.L2Sensitivity(), full.L2Sensitivity());
}

TEST(Fourier, FullBasisIsOrthonormal) {
  Domain d({3, 4});
  Matrix b = FullFourierBasis(d);
  EXPECT_LT(linalg::MatMulNT(b, b).MaxAbsDiff(Matrix::Identity(12)), 1e-10);
}

TEST(DataCube, CoversWorkloadAndIsSane) {
  Domain d({4, 4, 4});
  auto sets = AllSubsetsOfSize(3, 2);
  DataCubeResult r = DataCubeStrategy(d, sets);
  ASSERT_FALSE(r.chosen.empty());
  // Every workload marginal must be covered by some chosen marginal.
  for (const auto& t : sets) {
    bool covered = false;
    for (const auto& s : r.chosen) {
      if (MarginalCoverCost(d, t, s) <
          std::numeric_limits<double>::infinity()) {
        covered = true;
      }
    }
    EXPECT_TRUE(covered);
  }
  // And the strategy matrix answers the workload exactly.
  MarginalsWorkload w(d, sets, MarginalsWorkload::Flavor::kMarginal);
  EXPECT_LT(linalg::RowSpaceResidual(w.Materialize(), r.strategy.matrix()),
            1e-8);
}

TEST(DataCube, CoverCost) {
  Domain d({4, 8, 2});
  EXPECT_DOUBLE_EQ(MarginalCoverCost(d, {0}, {0, 1}), 8.0);
  EXPECT_DOUBLE_EQ(MarginalCoverCost(d, {0}, {0}), 1.0);
  EXPECT_TRUE(std::isinf(MarginalCoverCost(d, {0, 2}, {0, 1})));
}

TEST(DataCube, SingleMarginalWorkloadChoosesItself) {
  // For a workload of one marginal, answering exactly that marginal is
  // BMAX-optimal (cost 1 * |selection|=1).
  Domain d({4, 4});
  DataCubeResult r = DataCubeStrategy(d, {AttrSet{0}});
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0], (AttrSet{0}));
  EXPECT_DOUBLE_EQ(r.bmax_objective, 1.0);
}

TEST(DataCube, GreedyPathCoversLargeAttributeCounts) {
  // k = 5 attributes -> 32 candidate marginals -> greedy search path.
  Domain d({2, 2, 2, 2, 2});
  auto sets = AllSubsetsOfSize(5, 2);
  DataCubeResult r = DataCubeStrategy(d, sets);
  ASSERT_FALSE(r.chosen.empty());
  for (const auto& t : sets) {
    bool covered = false;
    for (const auto& s : r.chosen) {
      if (MarginalCoverCost(d, t, s) <
          std::numeric_limits<double>::infinity()) {
        covered = true;
      }
    }
    EXPECT_TRUE(covered);
  }
  // Greedy must at least match the trivial selection (the workload itself).
  double trivial = static_cast<double>(sets.size());  // |S| * cost 1
  EXPECT_LE(r.bmax_objective, trivial + 1e-9);
}

TEST(StrategyIo, RoundTrip) {
  Strategy original = WaveletStrategy(Domain::OneDim(16));
  const std::string path = ::testing::TempDir() + "/dpmm_strategy.txt";
  ASSERT_TRUE(strategy_io::SaveStrategy(original, path).ok());
  auto loaded = strategy_io::LoadStrategy(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().name(), "Wavelet");
  EXPECT_EQ(loaded.ValueOrDie().matrix().MaxAbsDiff(original.matrix()), 0.0);
  std::remove(path.c_str());
}

TEST(StrategyIo, PreservesFullPrecision) {
  linalg::Matrix m(1, 2);
  m(0, 0) = 1.0 / 3.0;
  m(0, 1) = -1.2345678901234567e-12;
  Strategy s(m, "precise");
  const std::string path = ::testing::TempDir() + "/dpmm_strategy_prec.txt";
  ASSERT_TRUE(strategy_io::SaveStrategy(s, path).ok());
  auto loaded = strategy_io::LoadStrategy(path).ValueOrDie();
  EXPECT_EQ(loaded.matrix()(0, 0), m(0, 0));
  EXPECT_EQ(loaded.matrix()(0, 1), m(0, 1));
  std::remove(path.c_str());
}

TEST(StrategyIo, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/dpmm_strategy_bad.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not a strategy\n1 2 3\n", f);
  std::fclose(f);
  EXPECT_FALSE(strategy_io::LoadStrategy(path).ok());
  EXPECT_FALSE(strategy_io::LoadStrategy("/nonexistent/x").ok());
  std::remove(path.c_str());
}

TEST(DataCube, TwoWayWorkloadOnCheapDomainUsesFullCube) {
  // With tiny attribute sizes, answering the single full cube (cost d) can
  // beat answering all three 2-way marginals (cost 3). BMAX must pick the
  // better of the two; verify optimality by brute-force re-check.
  Domain d({2, 2, 2});
  auto sets = AllSubsetsOfSize(3, 2);
  DataCubeResult r = DataCubeStrategy(d, sets);
  // Recompute the objective of the returned selection and confirm no single
  // alternative beats it by enumerating a few canonical candidates.
  const double full_cube = 1.0 * 2.0;        // {0,1,2}: |S|=1, aggregation 2
  const double all_two_way = 3.0 * 1.0;      // three exact marginals
  EXPECT_LE(r.bmax_objective, std::min(full_cube, all_two_way));
}

}  // namespace
}  // namespace dpmm
