// util/mutex.h: the capability-annotated lock layer. Exercises the wrapper
// under real contention (this test is in the TSan lane — see TSAN_TESTS in
// tools/ci.sh) and pins the debug lock-rank checker: ordered acquisition is
// silent, a deliberate inversion aborts with a diagnostic. The
// *compile-time* side of the discipline (unguarded access rejected under
// clang -Wthread-safety) is pinned by tests/compile_fail/.
#include "util/mutex.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dpmm {
namespace {

constexpr int kThreads = 4;

TEST(MutexTest, MutexLockExcludesWriters) {
  Mutex mu{LockRank::kLeaf};
  int counter = 0;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(MutexTest, ReaderMutexLockAdmitsConcurrentReaders) {
  Mutex mu{LockRank::kLeaf};
  int value = 41;
  {
    MutexLock lock(&mu);
    value = 42;
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        ReaderMutexLock lock(&mu);
        EXPECT_EQ(value, 42);
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu{LockRank::kLeaf};
  ASSERT_TRUE(mu.TryLock());
  std::thread other([&] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
}

TEST(MutexTest, RelockableMutexLockStaircase) {
  // The store's lock -> snapshot -> unlock -> IO -> relock -> publish shape.
  Mutex mu{LockRank::kLeaf};
  int published = 0;
  {
    MutexLock lock(&mu);
    const int snapshot = published;
    lock.Unlock();
    const int computed = snapshot + 1;  // "IO" outside the lock
    lock.Lock();
    published = computed;
  }
  MutexLock lock(&mu);
  EXPECT_EQ(published, 1);
}

TEST(MutexTest, CondVarWakesWaiters) {
  Mutex mu{LockRank::kLeaf};
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::vector<std::thread> waiters;
  waiters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!ready) cv.Wait(mu);
      ++observed;
    });
  }
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();
  MutexLock lock(&mu);
  EXPECT_EQ(observed, kThreads);
}

TEST(MutexTest, OrderedRanksAcquireSilently) {
  // Acquiring up the hierarchy is the sanctioned order; must not fire.
  Mutex outer{LockRank::kThreadPoolRegion};
  Mutex inner{LockRank::kMetricsRegistry};
  MutexLock outer_lock(&outer);
  MutexLock inner_lock(&inner);
  SUCCEED();
}

TEST(MutexRankDeathTest, FourThreadInversionAborts) {
#ifdef NDEBUG
  GTEST_SKIP() << "lock-rank checking is compiled out under NDEBUG "
                  "(Release); run the Debug or asan preset";
#else
  // Each thread holds a high rank and then acquires a lower one — the
  // deadlock-shaped pattern the rank checker exists to catch. The checker
  // fires before blocking, so this aborts instead of hanging.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
          threads.emplace_back([] {
            Mutex high{LockRank::kTraceRecorder};
            Mutex low{LockRank::kThreadPool};
            high.Lock();
            low.Lock();  // rank 20 after rank 60: inversion
            low.Unlock();
            high.Unlock();
          });
        }
        for (auto& th : threads) th.join();
      },
      "lock rank inversion");
#endif
}

TEST(MutexRankDeathTest, ReleasingUnheldRankAborts) {
#ifdef NDEBUG
  GTEST_SKIP() << "lock-rank checking is compiled out under NDEBUG";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu{LockRank::kLeaf};
        mu.Lock();
        std::thread other([&] { mu.Unlock(); });  // not this thread's lock
        other.join();
      },
      "does not hold");
#endif
}

}  // namespace
}  // namespace dpmm
