// Tests for the CSR sparse matrix and its use in the mechanism's fast path.
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/sparse.h"
#include "mechanism/matrix_mechanism.h"
#include "strategy/hierarchical.h"
#include "strategy/wavelet.h"
#include "util/rng.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace linalg {
namespace {

Matrix RandomSparseDense(std::size_t r, std::size_t c, double density,
                         Rng* rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      if (rng->UniformDouble() < density) m(i, j) = rng->Gaussian();
    }
  }
  return m;
}

TEST(SparseMatrix, RoundTripsThroughDense) {
  Rng rng(1);
  Matrix d = RandomSparseDense(13, 9, 0.2, &rng);
  SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_EQ(s.ToDense().MaxAbsDiff(d), 0.0);
  EXPECT_EQ(s.rows(), 13u);
  EXPECT_EQ(s.cols(), 9u);
}

TEST(SparseMatrix, NnzAndDensity) {
  Matrix d = Matrix::FromRows({{1, 0}, {0, 2}});
  SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_DOUBLE_EQ(s.Density(), 0.5);
}

TEST(SparseMatrix, ToleranceDropsSmallEntries) {
  Matrix d = Matrix::FromRows({{1e-14, 1.0}});
  EXPECT_EQ(SparseMatrix::FromDense(d, 1e-12).nnz(), 1u);
}

class SparseShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SparseShapes, MatVecMatchesDense) {
  auto [r, c] = GetParam();
  Rng rng(r * 100 + c);
  Matrix d = RandomSparseDense(r, c, 0.15, &rng);
  SparseMatrix s = SparseMatrix::FromDense(d);
  Vector x(c);
  for (auto& v : x) v = rng.Gaussian();
  Vector fast = s.MatVec(x);
  Vector slow = MatVec(d, x);
  for (int i = 0; i < r; ++i) ASSERT_NEAR(fast[i], slow[i], 1e-10);

  Vector y(r);
  for (auto& v : y) v = rng.Gaussian();
  Vector fast_t = s.MatTVec(y);
  Vector slow_t = MatTVec(d, y);
  for (int j = 0; j < c; ++j) ASSERT_NEAR(fast_t[j], slow_t[j], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SparseShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{5, 3},
                                           std::pair{17, 33}, std::pair{64, 64},
                                           std::pair{200, 50}));

TEST(SparseMatrix, MechanismSparseAndDensePathsAgree) {
  // The wavelet strategy triggers the CSR fast path; a dense strategy does
  // not. With the same seed both must produce identical releases for the
  // same strategy content.
  Domain dom({32});
  AllRangeWorkload w(dom);
  Strategy wav = WaveletStrategy(dom);  // sparse (density ~log n / n)

  // Dense copy of the same matrix, padded with a negligible epsilon so the
  // density check keeps it on the dense path.
  linalg::Matrix dense = wav.matrix();
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      if (dense(i, j) == 0.0) dense(i, j) = 1e-300;
    }
  }
  Strategy dense_strat(dense, "wavelet-dense");

  auto m1 = MatrixMechanism::Prepare(wav, {0.5, 1e-4}).ValueOrDie();
  auto m2 = MatrixMechanism::Prepare(dense_strat, {0.5, 1e-4}).ValueOrDie();
  Vector x(32, 10.0);
  Rng r1(9), r2(9);
  Vector a1 = m1.Run(w, x, &r1);
  Vector a2 = m2.Run(w, x, &r2);
  ASSERT_EQ(a1.size(), a2.size());
  for (std::size_t i = 0; i < a1.size(); ++i) {
    ASSERT_NEAR(a1[i], a2[i], 1e-6 * (1.0 + std::fabs(a1[i])));
  }
}

}  // namespace
}  // namespace linalg
}  // namespace dpmm
