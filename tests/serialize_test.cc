// Round-trip property tests for the binary artifact format: save -> load ->
// save is byte-stable, every corruption (magic, version, kind, checksum,
// truncation, trailing bytes) is a clean Status error, and a loaded
// strategy reproduces both the stored gap certificate and the exact
// numerical behavior of the original.
#include <cstdio>
#include <cstring>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "optimize/eigen_design.h"
#include "serialize/artifact.h"
#include "util/rng.h"
#include "workload/marginal_workloads.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

using serialize::DecodeReleaseArtifact;
using serialize::DecodeStrategyArtifact;
using serialize::EncodeReleaseArtifact;
using serialize::EncodeStrategyArtifact;
using serialize::ReleaseArtifact;
using serialize::StrategyArtifact;

StrategyArtifact DesignArtifact(const Workload& w, const std::string& spec) {
  auto design = optimize::EigenDesignKronForWorkload(w);
  EXPECT_TRUE(design.ok()) << design.status().ToString();
  auto& d = design.ValueOrDie();
  StrategyArtifact artifact;
  artifact.signature = spec;
  artifact.domain_sizes = w.domain().sizes();
  artifact.strategy = std::make_shared<KronStrategy>(std::move(d.strategy));
  artifact.solver_report = d.solver_report;
  artifact.duality_gap = d.duality_gap;
  artifact.rank = d.rank;
  return artifact;
}

const KronStrategy& AsKron(const StrategyArtifact& artifact) {
  return dynamic_cast<const KronStrategy&>(*artifact.strategy);
}

ReleaseArtifact SampleRelease(const std::string& spec,
                              const std::vector<std::size_t>& sizes,
                              std::size_t cells) {
  ReleaseArtifact rel;
  rel.signature = spec;
  rel.domain_sizes = sizes;
  rel.budget = {0.25, 5e-5};
  rel.dataset = "hist.csv";
  rel.seed = 42;
  rel.batch_index = 3;
  Rng rng(7);
  rel.x_hat.resize(cells);
  for (auto& v : rel.x_hat) v = rng.Gaussian(10.0);
  return rel;
}

TEST(StrategyArtifact, SaveLoadSaveIsByteStable) {
  AllRangeWorkload w(Domain({4, 4}));
  const StrategyArtifact artifact = DesignArtifact(w, "allrange@4,4");
  const std::string bytes = EncodeStrategyArtifact(artifact);
  auto decoded = DecodeStrategyArtifact(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const std::string bytes2 = EncodeStrategyArtifact(decoded.ValueOrDie());
  EXPECT_EQ(bytes, bytes2);
}

TEST(StrategyArtifact, LoadedStrategyReproducesGapCertificate) {
  MarginalsWorkload w(MarginalsWorkload::AllKWay(Domain({4, 4}), 1));
  const StrategyArtifact artifact = DesignArtifact(w, "marginals:1@4,4");
  auto decoded = DecodeStrategyArtifact(EncodeStrategyArtifact(artifact));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const StrategyArtifact& loaded = decoded.ValueOrDie();

  // The stored certificate survives bit-for-bit.
  EXPECT_EQ(loaded.duality_gap, artifact.duality_gap);
  EXPECT_EQ(loaded.rank, artifact.rank);
  EXPECT_EQ(loaded.solver_report.method, artifact.solver_report.method);
  EXPECT_EQ(loaded.solver_report.iterations,
            artifact.solver_report.iterations);
  EXPECT_EQ(loaded.solver_report.final_gap, artifact.solver_report.final_gap);
  EXPECT_EQ(loaded.signature, artifact.signature);
  EXPECT_EQ(loaded.domain_sizes, artifact.domain_sizes);

  // And the strategy behaves identically: same shape, same sensitivity,
  // same matvec and normal-solve outputs, bit for bit.
  ASSERT_EQ(loaded.engine(), StrategyEngine::kKron);
  const KronStrategy& a = AsKron(artifact);
  const KronStrategy& b = AsKron(loaded);
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.num_queries(), b.num_queries());
  EXPECT_EQ(a.kept(), b.kept());
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_EQ(a.completion(), b.completion());
  EXPECT_EQ(a.L2Sensitivity(), b.L2Sensitivity());
  Rng rng(3);
  linalg::Vector x(a.num_cells());
  for (auto& v : x) v = rng.Gaussian(1.0);
  EXPECT_EQ(a.Apply(x), b.Apply(x));
  EXPECT_EQ(a.SolveNormal(x), b.SolveNormal(x));
}

TEST(StrategyArtifact, FileRoundTrip) {
  AllRangeWorkload w(Domain({3, 5}));
  const StrategyArtifact artifact = DesignArtifact(w, "allrange@3,5");
  const std::string path = ::testing::TempDir() + "/dpmm_artifact.strategy";
  ASSERT_TRUE(serialize::SaveStrategyArtifact(artifact, path).ok());
  auto loaded = serialize::LoadStrategyArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(EncodeStrategyArtifact(loaded.ValueOrDie()),
            EncodeStrategyArtifact(artifact));
  std::remove(path.c_str());
}

TEST(StrategyArtifact, ChecksumMismatchRejected) {
  AllRangeWorkload w(Domain({4, 4}));
  std::string bytes = EncodeStrategyArtifact(DesignArtifact(w, "allrange@4,4"));
  // Flip one payload byte: the checksum must catch it.
  bytes[bytes.size() - 3] ^= 0x40;
  auto decoded = DecodeStrategyArtifact(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIoError);
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos)
      << decoded.status().message();
}

TEST(StrategyArtifact, VersionMismatchRejected) {
  AllRangeWorkload w(Domain({4, 4}));
  std::string bytes = EncodeStrategyArtifact(DesignArtifact(w, "allrange@4,4"));
  bytes[8] = 99;  // the version field follows the 8-byte magic
  auto decoded = DecodeStrategyArtifact(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos)
      << decoded.status().message();
}

TEST(StrategyArtifact, BadMagicAndKindRejected) {
  AllRangeWorkload w(Domain({4, 4}));
  const std::string bytes =
      EncodeStrategyArtifact(DesignArtifact(w, "allrange@4,4"));
  std::string wrong = bytes;
  wrong[0] = 'X';
  EXPECT_FALSE(DecodeStrategyArtifact(wrong).ok());
  // A strategy artifact is not a release artifact.
  EXPECT_FALSE(DecodeReleaseArtifact(bytes).ok());
  EXPECT_FALSE(DecodeStrategyArtifact("").ok());
  EXPECT_FALSE(DecodeStrategyArtifact("short").ok());
}

TEST(StrategyArtifact, TruncationRejectedAtEveryLength) {
  AllRangeWorkload w(Domain({2, 3}));
  const std::string bytes =
      EncodeStrategyArtifact(DesignArtifact(w, "allrange@2,3"));
  // Every strict prefix must fail cleanly (never crash, never succeed).
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = DecodeStrategyArtifact(bytes.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(StrategyArtifact, TrailingBytesRejected) {
  AllRangeWorkload w(Domain({4, 4}));
  std::string bytes = EncodeStrategyArtifact(DesignArtifact(w, "allrange@4,4"));
  bytes += '\0';
  auto decoded = DecodeStrategyArtifact(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(ReleaseArtifact, SaveLoadSaveIsByteStable) {
  const ReleaseArtifact rel = SampleRelease("allrange@4,4", {4, 4}, 16);
  const std::string bytes = EncodeReleaseArtifact(rel);
  auto decoded = DecodeReleaseArtifact(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const ReleaseArtifact& loaded = decoded.ValueOrDie();
  EXPECT_EQ(EncodeReleaseArtifact(loaded), bytes);
  EXPECT_EQ(loaded.x_hat, rel.x_hat);
  EXPECT_EQ(loaded.budget.epsilon, rel.budget.epsilon);
  EXPECT_EQ(loaded.budget.delta, rel.budget.delta);
  EXPECT_EQ(loaded.dataset, rel.dataset);
  EXPECT_EQ(loaded.seed, rel.seed);
  EXPECT_EQ(loaded.batch_index, rel.batch_index);
}

TEST(ReleaseArtifact, TruncationAndCorruptionRejected) {
  const std::string bytes =
      EncodeReleaseArtifact(SampleRelease("allrange@4,4", {4, 4}, 16));
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    ASSERT_FALSE(DecodeReleaseArtifact(bytes.substr(0, len)).ok());
  }
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x01;
  EXPECT_FALSE(DecodeReleaseArtifact(corrupt).ok());
}

TEST(ReleaseArtifact, EstimateLengthMustMatchDomain) {
  // 15 values for a 16-cell domain: structurally valid container, invalid
  // content.
  const std::string bytes =
      EncodeReleaseArtifact(SampleRelease("allrange@4,4", {4, 4}, 15));
  auto decoded = DecodeReleaseArtifact(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("disagrees"), std::string::npos);
}

TEST(ReleaseArtifact, InvalidBudgetRejected) {
  ReleaseArtifact rel = SampleRelease("allrange@4,4", {4, 4}, 16);
  rel.budget.epsilon = -1.0;
  EXPECT_FALSE(DecodeReleaseArtifact(EncodeReleaseArtifact(rel)).ok());
}

TEST(ReleaseArtifact, SupersessionRoundTripsInV3) {
  ReleaseArtifact rel = SampleRelease("allrange@4,4", {4, 4}, 16);
  rel.supersedes_plus1 = 8;  // this release replaced stored id 7
  const std::string bytes = EncodeReleaseArtifact(rel);
  auto decoded = DecodeReleaseArtifact(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const ReleaseArtifact& loaded = decoded.ValueOrDie();
  ASSERT_TRUE(loaded.has_supersedes());
  EXPECT_EQ(loaded.supersedes(), 7u);
  EXPECT_EQ(EncodeReleaseArtifact(loaded), bytes);

  // "Supersedes nothing" is the zero sentinel, not a valid id.
  rel.supersedes_plus1 = 0;
  auto fresh = DecodeReleaseArtifact(EncodeReleaseArtifact(rel));
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.ValueOrDie().has_supersedes());
}

TEST(ReleaseArtifact, LegacyV2StillDecodes) {
  // A v2 release (written before the supersession field existed) must keep
  // decoding, reading as "supersedes nothing" — the store's migration path
  // depends on old artifacts staying servable without rewrites.
  const ReleaseArtifact rel = SampleRelease("allrange@4,4", {4, 4}, 16);
  const std::string v2 = serialize::internal::EncodeReleaseArtifactV2(rel);
  ASSERT_NE(v2, EncodeReleaseArtifact(rel));  // the layouts really differ
  auto decoded = DecodeReleaseArtifact(v2);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const ReleaseArtifact& loaded = decoded.ValueOrDie();
  EXPECT_FALSE(loaded.has_supersedes());
  EXPECT_EQ(loaded.x_hat, rel.x_hat);
  EXPECT_EQ(loaded.dataset, rel.dataset);
  EXPECT_EQ(loaded.seed, rel.seed);
  EXPECT_EQ(loaded.batch_index, rel.batch_index);
  // Re-encoding upgrades to the current version, bit-identically otherwise.
  EXPECT_EQ(EncodeReleaseArtifact(loaded), EncodeReleaseArtifact(rel));
}

TEST(StrategyArtifact, LegacyV1StillDecodes) {
  AllRangeWorkload w(Domain({4, 4}));
  const StrategyArtifact artifact = DesignArtifact(w, "allrange@4,4");
  const std::string v1 = serialize::internal::EncodeStrategyArtifactV1(artifact);
  auto decoded = DecodeStrategyArtifact(v1);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(EncodeStrategyArtifact(decoded.ValueOrDie()),
            EncodeStrategyArtifact(artifact));
}

TEST(Fnv1a64, KnownVectorsAndStability) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(serialize::Fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(serialize::Fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(serialize::Fnv1a64(std::string("allrange@8,16,16")),
            serialize::Fnv1a64(std::string("allrange@8,16,16")));
}

}  // namespace
}  // namespace dpmm
