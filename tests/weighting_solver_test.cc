// Tests for the Program-1 solver: dual solver vs the independent barrier
// reference on random instances, KKT / duality-gap certificates, the stall
// detector's window decision, and closed-form corner cases.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "linalg/eigen_sym.h"
#include "optimize/dual_solver.h"
#include "optimize/reference_solver.h"
#include "optimize/weighting_problem.h"
#include "util/rng.h"
#include "workload/builders.h"
#include "workload/gram.h"
#include "workload/marginal_workloads.h"

namespace dpmm {
namespace optimize {
namespace {

using linalg::Matrix;

WeightingProblem RandomProblem(std::size_t nv, std::size_t nc, int exponent,
                               Rng* rng) {
  WeightingProblem p;
  p.exponent = exponent;
  p.c.resize(nv);
  for (auto& v : p.c) v = 0.1 + 3.0 * rng->UniformDouble();
  p.constraints = Matrix(nc, nv);
  for (std::size_t j = 0; j < nc; ++j) {
    for (std::size_t i = 0; i < nv; ++i) {
      p.constraints(j, i) = rng->UniformDouble();
    }
    // Guarantee every variable appears in some constraint.
    p.constraints(j, j % nv) += 0.2;
  }
  return p;
}

double MaxConstraint(const WeightingProblem& p, const linalg::Vector& x) {
  double mx = 0;
  for (std::size_t j = 0; j < p.num_constraints(); ++j) {
    double v = 0;
    for (std::size_t i = 0; i < p.num_vars(); ++i) {
      v += p.constraints(j, i) * x[i];
    }
    mx = std::max(mx, v);
  }
  return mx;
}

TEST(DualSolver, SingleVariableClosedForm) {
  // min c/u s.t. g*u <= 1 -> u = 1/g, objective c*g.
  WeightingProblem p;
  p.exponent = 1;
  p.c = {2.0};
  p.constraints = Matrix::FromRows({{4.0}});
  SolverOptions tight;
  tight.relative_gap_tol = 1e-9;  // the solver honors tighter tolerances
  auto sol = SolveWeighting(p, tight).ValueOrDie();
  EXPECT_NEAR(sol.x[0], 0.25, 1e-8);
  EXPECT_NEAR(sol.objective, 8.0, 1e-7);
  EXPECT_LT(sol.relative_gap, 1e-7);
}

TEST(DualSolver, SymmetricDoublyStochasticCase) {
  // Equal c with an orthogonal design: by symmetry u = 1 is optimal and the
  // objective is sum(c).
  const std::size_t n = 6;
  Matrix q = HelmertBasis(n);
  WeightingProblem p;
  p.exponent = 1;
  p.c.assign(n, 3.0);
  p.constraints = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      p.constraints(j, i) = q(i, j) * q(i, j);
    }
  }
  auto sol = SolveWeighting(p).ValueOrDie();
  EXPECT_NEAR(sol.objective, 18.0, 1e-6);
}

TEST(DualSolver, ZeroObjectiveDegenerate) {
  WeightingProblem p;
  p.exponent = 1;
  p.c = {0.0, 0.0};
  p.constraints = Matrix::FromRows({{1.0, 1.0}});
  auto sol = SolveWeighting(p).ValueOrDie();
  EXPECT_EQ(sol.objective, 0.0);
  EXPECT_LE(MaxConstraint(p, sol.x), 1.0 + 1e-12);
}

class SolverRandomInstances
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SolverRandomInstances, DualMatchesBarrierReference) {
  auto [nv, nc, exponent] = GetParam();
  Rng rng(nv * 100 + nc * 10 + exponent);
  WeightingProblem p = RandomProblem(nv, nc, exponent, &rng);

  auto dual = SolveWeighting(p).ValueOrDie();
  auto barrier = SolveWeightingBarrier(p).ValueOrDie();

  // Independent algorithms must agree on the optimum.
  EXPECT_NEAR(dual.objective, barrier.objective,
              2e-4 * std::max(1.0, barrier.objective));
  // Both solutions feasible.
  EXPECT_LE(MaxConstraint(p, dual.x), 1.0 + 1e-9);
  EXPECT_LE(MaxConstraint(p, barrier.x), 1.0 + 1e-9);
  // Gap certificate: the dual bound brackets both.
  EXPECT_LE(dual.dual_bound, dual.objective + 1e-9);
  EXPECT_LE(dual.dual_bound, barrier.objective * (1.0 + 1e-6));
  EXPECT_LT(dual.relative_gap, 2e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, SolverRandomInstances,
    ::testing::Values(std::tuple{1, 3, 1}, std::tuple{2, 2, 1},
                      std::tuple{3, 5, 1}, std::tuple{5, 4, 1},
                      std::tuple{8, 8, 1}, std::tuple{12, 20, 1},
                      std::tuple{2, 3, 2}, std::tuple{4, 6, 2},
                      std::tuple{8, 10, 2}));

TEST(StallDetector, GuardedWhileNoFinitePrimalExists) {
  // Before any feasible primal point is found, best.objective is +inf and
  // the window gap would be inf/inf = NaN; the detector must report "not
  // stalled" deterministically instead of depending on a NaN comparison
  // (which silently reset the counter, and would flip meaning if the
  // comparison were ever rewritten with the operands reversed).
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(internal::StallWindowStalled(inf, 1.0, 1.0, 1000));
  EXPECT_FALSE(internal::StallWindowStalled(inf, 1.0, 0.5, 1000));
  EXPECT_FALSE(internal::StallWindowStalled(inf, 0.0, 0.0, 0));
}

TEST(StallDetector, FlagsHopelessAndSparesProgressingWindows) {
  // Zero progress against a real gap: stalled.
  EXPECT_TRUE(internal::StallWindowStalled(10.0, 5.0, 5.0, 1000));
  // Strong progress (0.1 over the window, 10 windows left, gap 0.5):
  // projected 0.67 > 0.2 * gap, not stalled.
  EXPECT_FALSE(internal::StallWindowStalled(1.5, 1.0, 0.9, 1000));
  // The same slope with only one window of budget left cannot close the
  // gap: stalled.
  EXPECT_TRUE(internal::StallWindowStalled(2.0, 1.0, 0.999, 100));
  // Gap already closed (dual == objective): projected progress exceeds the
  // zero gap, not stalled (the gap-tolerance check terminates first anyway).
  EXPECT_FALSE(internal::StallWindowStalled(2.0, 2.0, 1.0, 1000));
}

TEST(DualSolver, EigenProblemKktAtOptimum) {
  // On a real workload: optimal u must activate the binding constraints
  // (complementary slackness holds through the duality gap certificate).
  Matrix gram = gram::AllRange1D(32);
  auto eig = linalg::SymmetricEigen(gram).ValueOrDie();
  std::vector<std::size_t> kept;
  WeightingProblem p = MakeEigenProblem(eig, 1e-10, &kept);
  EXPECT_EQ(kept.size(), 32u);  // full-rank workload
  SolverOptions tight;
  tight.max_iterations = 20000;
  tight.relative_gap_tol = 1e-7;
  auto sol = SolveWeighting(p, tight).ValueOrDie();
  EXPECT_LT(sol.relative_gap, 2e-5);
  // Sensitivity normalized: the tightest constraint is exactly 1.
  EXPECT_NEAR(MaxConstraint(p, sol.x), 1.0, 1e-9);
  // Every weight strictly positive (all eigenvalues nonzero).
  for (double u : sol.x) EXPECT_GT(u, 0.0);
}

TEST(WeightingProblem, EigenCoefficientsAreEigenvalues) {
  Matrix gram = gram::Prefix1D(10);
  auto eig = linalg::SymmetricEigen(gram).ValueOrDie();
  std::vector<std::size_t> kept;
  WeightingProblem p = MakeEigenProblem(eig, 1e-10, &kept);
  for (std::size_t v = 0; v < kept.size(); ++v) {
    EXPECT_NEAR(p.c[v], eig.values[kept[v]], 1e-9);
  }
}

TEST(WeightingProblem, GeneralBasisMatchesEigenOnOrthogonalInput) {
  // MakeL2Problem with the eigenbasis as a general basis must produce the
  // same c as MakeEigenProblem.
  Matrix gram = gram::AllRange1D(12);
  auto eig = linalg::SymmetricEigen(gram).ValueOrDie();
  Matrix basis = eig.vectors.Transposed();  // rows = eigen queries
  WeightingProblem general = MakeL2Problem(gram, basis);
  std::vector<std::size_t> kept;
  WeightingProblem eigenp = MakeEigenProblem(eig, 0.0, &kept);
  ASSERT_EQ(general.c.size(), eigenp.c.size());
  for (std::size_t i = 0; i < general.c.size(); ++i) {
    EXPECT_NEAR(general.c[i], eigenp.c[i], 1e-7);
  }
}

TEST(WeightingProblem, RankReductionDropsZeroEigenvalues) {
  // Fig. 1 workload has rank 4 over 8 cells.
  Matrix gram =
      ExplicitWorkload::FromMatrix(builders::Fig1Matrix(), "Fig1").Gram();
  auto eig = linalg::SymmetricEigen(gram).ValueOrDie();
  std::vector<std::size_t> kept;
  WeightingProblem p = MakeEigenProblem(eig, 1e-10, &kept);
  EXPECT_EQ(kept.size(), 4u);
  EXPECT_EQ(p.num_vars(), 4u);
  EXPECT_EQ(p.num_constraints(), 8u);
}

}  // namespace
}  // namespace optimize
}  // namespace dpmm
