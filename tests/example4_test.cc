// Reproduces Example 4 of the paper exactly: for the Fig. 1(b) workload at
// eps = 0.5, delta = 1e-4, the published root-mean-square errors are
//   workload-as-strategy 47.78, identity 45.36, wavelet 34.62,
//   adaptive (eigen-design) 29.79, and provable lower bound 29.18.
// These are matched by the kLegacyExample4 convention (see error.h); the
// cross-strategy ratios are convention-independent.
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/eigen_sym.h"
#include "mechanism/bounds.h"
#include "mechanism/error.h"
#include "optimize/eigen_design.h"
#include "strategy/wavelet.h"
#include "workload/builders.h"

namespace dpmm {
namespace {

class Example4 : public ::testing::Test {
 protected:
  Example4()
      : workload_(ExplicitWorkload::FromMatrix(builders::Fig1Matrix(), "Fig1")) {
    opts_.privacy = {0.5, 1e-4};
    opts_.convention = ErrorConvention::kLegacyExample4;
  }

  ExplicitWorkload workload_;
  ErrorOptions opts_;
};

TEST_F(Example4, IdentityStrategyError) {
  EXPECT_NEAR(StrategyError(workload_, IdentityStrategy(8), opts_), 45.36,
              0.05);
}

TEST_F(Example4, WaveletStrategyError) {
  EXPECT_NEAR(StrategyError(workload_, WaveletStrategy(Domain::OneDim(8)), opts_),
              34.62, 0.05);
}

TEST_F(Example4, WorkloadAsStrategyError) {
  EXPECT_NEAR(GaussianBaselineError(workload_, opts_), 47.78, 0.05);
}

TEST_F(Example4, LowerBound) {
  EXPECT_NEAR(SvdErrorLowerBound(workload_.Gram(), 8, opts_), 29.18, 0.05);
}

TEST_F(Example4, AdaptiveStrategyError) {
  auto design = optimize::EigenDesignForWorkload(workload_).ValueOrDie();
  const double err = StrategyError(workload_, design.strategy, opts_);
  // The paper's solver reached 29.79; ours must do at least as well while
  // staying above the bound.
  EXPECT_LE(err, 29.85);
  EXPECT_GE(err, 29.18 - 0.05);
}

TEST_F(Example4, PublishedRatiosAreConventionIndependent) {
  ErrorOptions per = opts_;
  per.convention = ErrorConvention::kPerQuery;
  const double id_leg = StrategyError(workload_, IdentityStrategy(8), opts_);
  const double wav_leg =
      StrategyError(workload_, WaveletStrategy(Domain::OneDim(8)), opts_);
  const double id_per = StrategyError(workload_, IdentityStrategy(8), per);
  const double wav_per =
      StrategyError(workload_, WaveletStrategy(Domain::OneDim(8)), per);
  EXPECT_NEAR(id_leg / wav_leg, id_per / wav_per, 1e-9);
  // Paper ratio 45.36 / 34.62 = 1.310.
  EXPECT_NEAR(id_per / wav_per, 1.310, 0.01);
}

TEST_F(Example4, WorkloadSensitivityIsSqrt5) {
  EXPECT_NEAR(workload_.L2Sensitivity(), std::sqrt(5.0), 1e-12);
}

TEST_F(Example4, WorkloadRankIsFour) {
  auto eig = linalg::SymmetricEigen(workload_.Gram()).ValueOrDie();
  int nonzero = 0;
  for (double v : eig.values) {
    if (v > 1e-9) ++nonzero;
  }
  EXPECT_EQ(nonzero, 4);
}

}  // namespace
}  // namespace dpmm
