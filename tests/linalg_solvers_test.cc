// Unit tests for Cholesky, LU and QR.
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "util/rng.h"

namespace dpmm {
namespace linalg {
namespace {

Matrix RandomMatrix(std::size_t r, std::size_t c, Rng* rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng->Gaussian();
  }
  return m;
}

Matrix RandomSpd(std::size_t n, Rng* rng) {
  Matrix a = RandomMatrix(n + 4, n, rng);
  Matrix g = Gram(a);
  for (std::size_t i = 0; i < n; ++i) g(i, i) += 0.5;
  return g;
}

class SolverSizes : public ::testing::TestWithParam<int> {};

TEST_P(SolverSizes, CholeskySolveResidual) {
  const int n = GetParam();
  Rng rng(n);
  Matrix spd = RandomSpd(n, &rng);
  auto chol = Cholesky::Factor(spd).ValueOrDie();
  Vector b(n);
  for (auto& v : b) v = rng.Gaussian();
  Vector x = chol.Solve(b);
  Vector r = Sub(MatVec(spd, x), b);
  EXPECT_LT(Norm2(r), 1e-8 * (1.0 + Norm2(b)));
}

TEST_P(SolverSizes, CholeskyInverse) {
  const int n = GetParam();
  Rng rng(n + 1);
  Matrix spd = RandomSpd(n, &rng);
  auto chol = Cholesky::Factor(spd).ValueOrDie();
  Matrix prod = MatMul(spd, chol.Inverse());
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(n)), 1e-7);
}

TEST_P(SolverSizes, CholeskyFactorReconstructs) {
  const int n = GetParam();
  Rng rng(n + 2);
  Matrix spd = RandomSpd(n, &rng);
  auto chol = Cholesky::Factor(spd).ValueOrDie();
  const Matrix& l = chol.lower();
  EXPECT_LT(MatMulNT(l, l).MaxAbsDiff(spd), 1e-8 * (1 + spd.FrobeniusNorm()));
  // Strictly upper triangle must be zeroed.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) ASSERT_EQ(l(i, j), 0.0);
  }
}

TEST_P(SolverSizes, LuSolveAndInverse) {
  const int n = GetParam();
  Rng rng(n + 3);
  Matrix a = RandomMatrix(n, n, &rng);
  auto lu = Lu::Factor(a).ValueOrDie();
  Vector b(n);
  for (auto& v : b) v = rng.Gaussian();
  Vector x = lu.Solve(b);
  EXPECT_LT(Norm2(Sub(MatVec(a, x), b)), 1e-7 * (1 + Norm2(b)));
  EXPECT_LT(MatMul(a, lu.Inverse()).MaxAbsDiff(Matrix::Identity(n)), 1e-6);
}

TEST_P(SolverSizes, QrLeastSquaresMatchesNormalEquations) {
  const int n = GetParam();
  Rng rng(n + 4);
  Matrix a = RandomMatrix(n + 6, n, &rng);
  Vector b(n + 6);
  for (auto& v : b) v = rng.Gaussian();
  auto qr = Qr::Factor(a).ValueOrDie();
  Vector x_qr = qr.SolveLeastSquares(b);
  // Normal equations solution.
  auto chol = Cholesky::Factor(Gram(a)).ValueOrDie();
  Vector x_ne = chol.Solve(MatTVec(a, b));
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x_qr[i], x_ne[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolverSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

TEST(Cholesky, RejectsIndefinite) {
  Matrix m = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::Factor(m).ok());
}

TEST(Cholesky, JitterRescuesSemidefinite) {
  // Rank-1 PSD matrix: plain factorization fails, jitter succeeds.
  Matrix m = Matrix::FromRows({{1, 1}, {1, 1}});
  EXPECT_FALSE(Cholesky::Factor(m).ok());
  EXPECT_TRUE(Cholesky::FactorWithJitter(m, 1e-8).ok());
}

TEST(Cholesky, LogDet) {
  Matrix m = Matrix::Diagonal({2, 3, 4});
  auto chol = Cholesky::Factor(m).ValueOrDie();
  EXPECT_NEAR(chol.LogDet(), std::log(24.0), 1e-12);
}

TEST(Lu, SingularMatrixRejected) {
  Matrix m = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_FALSE(Lu::Factor(m).ok());
}

TEST(Lu, Determinant) {
  Matrix m = Matrix::FromRows({{0, 1}, {1, 0}});  // det -1, needs pivoting
  EXPECT_NEAR(Lu::Factor(m).ValueOrDie().Determinant(), -1.0, 1e-12);
  Matrix d = Matrix::Diagonal({2, 5});
  EXPECT_NEAR(Lu::Factor(d).ValueOrDie().Determinant(), 10.0, 1e-12);
}

TEST(Qr, RankDetection) {
  // Rank-2 matrix with 3 columns.
  Matrix a = Matrix::FromRows({{1, 0, 1}, {0, 1, 1}, {1, 1, 2}, {2, 1, 3}});
  auto qr = Qr::Factor(a).ValueOrDie();
  EXPECT_EQ(qr.Rank(), 2u);
  EXPECT_EQ(NumericalRank(a), 2u);
}

TEST(Qr, RejectsWideMatrix) {
  Matrix a(2, 5);
  EXPECT_FALSE(Qr::Factor(a).ok());
}

TEST(Qr, RowSpaceResidual) {
  // Rows of W within the row space of A.
  Matrix a = Matrix::FromRows({{1, 1, 0}, {0, 1, 1}});
  Matrix w_in = Matrix::FromRows({{1, 2, 1}, {2, 3, 1}});
  EXPECT_LT(RowSpaceResidual(w_in, a), 1e-9);
  Matrix w_out = Matrix::FromRows({{1, 0, 0}});
  EXPECT_GT(RowSpaceResidual(w_out, a), 0.1);
}

TEST(Svd, SingularValuesOfDiagonal) {
  Matrix d = Matrix::Diagonal({3, 1, 2});
  Vector sv = SingularValues(d);
  ASSERT_EQ(sv.size(), 3u);
  EXPECT_NEAR(sv[0], 3.0, 1e-9);
  EXPECT_NEAR(sv[1], 2.0, 1e-9);
  EXPECT_NEAR(sv[2], 1.0, 1e-9);
}

TEST(Svd, PseudoInverseMoorePenrose) {
  Rng rng(11);
  // Tall rank-deficient matrix: duplicate a column.
  Matrix a(7, 3);
  for (std::size_t i = 0; i < 7; ++i) {
    a(i, 0) = rng.Gaussian();
    a(i, 1) = rng.Gaussian();
    a(i, 2) = a(i, 0);  // rank 2
  }
  Matrix ap = PseudoInverse(a);
  // The four Moore-Penrose conditions.
  EXPECT_LT(MatMul(MatMul(a, ap), a).MaxAbsDiff(a), 1e-8);
  EXPECT_LT(MatMul(MatMul(ap, a), ap).MaxAbsDiff(ap), 1e-8);
  Matrix aap = MatMul(a, ap);
  EXPECT_LT(aap.MaxAbsDiff(aap.Transposed()), 1e-8);
  Matrix apa = MatMul(ap, a);
  EXPECT_LT(apa.MaxAbsDiff(apa.Transposed()), 1e-8);
}

TEST(Svd, PseudoInverseOfSquareInvertibleIsInverse) {
  Rng rng(3);
  Matrix a = RandomMatrix(5, 5, &rng);
  Matrix ap = PseudoInverse(a);
  EXPECT_LT(MatMul(a, ap).MaxAbsDiff(Matrix::Identity(5)), 1e-7);
}

TEST(Svd, WideMatrixPseudoInverse) {
  Rng rng(4);
  Matrix a = RandomMatrix(3, 8, &rng);
  Matrix ap = PseudoInverse(a);
  EXPECT_EQ(ap.rows(), 8u);
  EXPECT_EQ(ap.cols(), 3u);
  EXPECT_LT(MatMul(a, ap).MaxAbsDiff(Matrix::Identity(3)), 1e-7);
}

}  // namespace
}  // namespace linalg
}  // namespace dpmm
