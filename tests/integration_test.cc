// End-to-end integration tests: the full pipeline (workload -> eigen design
// -> mechanism -> private answers) on synthetic datasets, ad hoc stacked
// workloads, relative-error optimization and persistence.
#include <cmath>
#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/io.h"
#include "mechanism/bounds.h"
#include "mechanism/error.h"
#include "mechanism/matrix_mechanism.h"
#include "optimize/eigen_design.h"
#include "strategy/wavelet.h"
#include "workload/builders.h"
#include "workload/marginal_workloads.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

TEST(Integration, FullPipelineOnZipfData) {
  Domain dom({64});
  AllRangeWorkload w(dom);
  DataVector data = data::GenZipf(dom, 1e6, 1.1, 3);

  auto design = optimize::EigenDesignForWorkload(w).ValueOrDie();
  PrivacyParams privacy{1.0, 1e-4};
  auto mech = MatrixMechanism::Prepare(design.strategy, privacy).ValueOrDie();

  Rng rng(1);
  linalg::Vector answers = mech.Run(w, data.counts, &rng);
  ASSERT_EQ(answers.size(), w.num_queries());

  // The total query (range covering everything) should be near the truth.
  const linalg::Vector truth = w.Answer(data.counts);
  double worst_big_rel = 0;
  for (std::size_t q = 0; q < truth.size(); ++q) {
    if (truth[q] > 0.2 * data.Total()) {
      worst_big_rel = std::max(
          worst_big_rel, std::fabs(answers[q] - truth[q]) / truth[q]);
    }
  }
  EXPECT_LT(worst_big_rel, 0.05);  // large counts answered accurately
}

TEST(Integration, RelativeErrorDesignBeatsAbsoluteDesignOnRelativeMetric) {
  // Sec. 3.4: optimizing the row-normalized workload should improve the
  // relative-error metric compared against a workload-as-is design.
  Domain dom({64});
  AllRangeWorkload w(dom);
  DataVector data = data::GenZipf(dom, 1e6, 1.0, 7);
  PrivacyParams privacy{0.5, 1e-4};

  auto abs_design = optimize::EigenDesign(w.Gram()).ValueOrDie();
  auto rel_design = optimize::EigenDesign(w.NormalizedGram()).ValueOrDie();
  auto abs_mech =
      MatrixMechanism::Prepare(abs_design.strategy, privacy).ValueOrDie();
  auto rel_mech =
      MatrixMechanism::Prepare(rel_design.strategy, privacy).ValueOrDie();

  RelativeErrorOptions ropts;
  ropts.trials = 15;
  const double abs_rel = MeanRelativeError(w, abs_mech, data, ropts);
  const double rel_rel = MeanRelativeError(w, rel_mech, data, ropts);
  // The scaled design should not be worse; typically it is clearly better.
  EXPECT_LE(rel_rel, abs_rel * 1.05);
}

TEST(Integration, AdHocStackedWorkloadPipeline) {
  // Two users: one wants a CDF, the other random ranges; the combined
  // workload is designed jointly and eigen-design beats wavelet on it.
  Domain dom({48});
  Rng rng(5);
  auto u1 = std::make_shared<PrefixWorkload>(48);
  auto u2 = std::make_shared<ExplicitWorkload>(
      builders::RandomRangeWorkload(dom, 40, &rng));
  StackedWorkload combined({u1, u2}, "two-users");

  ErrorOptions opts;
  opts.privacy = {0.5, 1e-4};
  auto design = optimize::EigenDesignForWorkload(combined).ValueOrDie();
  const double eigen_err = StrategyError(combined, design.strategy, opts);
  const double wavelet_err =
      StrategyError(combined, WaveletStrategy(dom), opts);
  EXPECT_LT(eigen_err, wavelet_err);
  EXPECT_GE(eigen_err, SvdErrorLowerBound(combined.Gram(),
                                          combined.num_queries(), opts) *
                           (1 - 1e-6));

  // The mechanism actually runs on the combined workload.
  auto mech =
      MatrixMechanism::Prepare(design.strategy, opts.privacy).ValueOrDie();
  DataVector data = data::GenZipf(dom, 5e5, 0.8, 11);
  linalg::Vector answers = mech.Run(combined, data.counts, &rng);
  EXPECT_EQ(answers.size(), combined.num_queries());
}

TEST(Integration, MarginalPipelineOnAdultLikeData) {
  DataVector adult = data::GenAdultLike();
  MarginalsWorkload w = MarginalsWorkload::AllKWay(adult.domain, 2);
  auto design = optimize::EigenDesignFromEigen(w.AnalyticEigen()).ValueOrDie();
  PrivacyParams privacy{1.0, 1e-4};
  auto mech = MatrixMechanism::Prepare(design.strategy, privacy).ValueOrDie();
  RelativeErrorOptions ropts;
  ropts.trials = 3;
  ropts.floor = 10.0;
  const double rel = MeanRelativeError(w, mech, adult, ropts);
  EXPECT_GT(rel, 0.0);
  EXPECT_LT(rel, 5.0);  // sane scale on 33K tuples
}

TEST(Integration, PersistedHistogramRoundTripsThroughMechanism) {
  Domain dom({4, 4});
  DataVector data = data::GenUniform(dom, 1600);
  const std::string path = ::testing::TempDir() + "/dpmm_integration.csv";
  ASSERT_TRUE(data::SaveCsv(data, path).ok());
  DataVector loaded = data::LoadCsv(path).ValueOrDie();

  MarginalsWorkload w = MarginalsWorkload::AllKWay(dom, 1);
  auto design = optimize::EigenDesignForWorkload(w).ValueOrDie();
  auto mech =
      MatrixMechanism::Prepare(design.strategy, {0.5, 1e-4}).ValueOrDie();
  Rng rng(13);
  linalg::Vector a1 = mech.Run(w, data.counts, &rng);
  Rng rng2(13);
  linalg::Vector a2 = mech.Run(w, loaded.counts, &rng2);
  for (std::size_t i = 0; i < a1.size(); ++i) ASSERT_DOUBLE_EQ(a1[i], a2[i]);
  std::remove(path.c_str());
}

TEST(Integration, EndToEndDeterminismForSeed) {
  Domain dom({32});
  AllRangeWorkload w(dom);
  auto design = optimize::EigenDesignForWorkload(w).ValueOrDie();
  auto mech =
      MatrixMechanism::Prepare(design.strategy, {0.5, 1e-4}).ValueOrDie();
  DataVector data = data::GenZipf(dom, 1e4, 1.0, 2);
  Rng r1(99), r2(99);
  linalg::Vector a1 = mech.Run(w, data.counts, &r1);
  linalg::Vector a2 = mech.Run(w, data.counts, &r2);
  EXPECT_EQ(a1, a2);
}

}  // namespace
}  // namespace dpmm
