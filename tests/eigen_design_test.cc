// Tests for the Eigen-Design algorithm (Program 2): dominance over every
// baseline strategy, the Thm. 3 approximation ratio, column completion, and
// the analytic-eigen fast path for marginal workloads.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "mechanism/bounds.h"
#include "mechanism/error.h"
#include "optimize/eigen_design.h"
#include "strategy/datacube.h"
#include "strategy/fourier.h"
#include "strategy/hierarchical.h"
#include "strategy/wavelet.h"
#include "util/rng.h"
#include "workload/builders.h"
#include "workload/marginal_workloads.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

ErrorOptions Opts() {
  ErrorOptions o;
  o.privacy = {0.5, 1e-4};
  return o;
}

struct Scenario {
  std::string name;
  std::shared_ptr<Workload> workload;
  std::vector<Strategy> competitors;
};

Scenario MakeScenario(int which) {
  switch (which) {
    case 0: {
      Domain dom({32});
      auto w = std::make_shared<AllRangeWorkload>(dom);
      return {"all-range-1d",
              w,
              {IdentityStrategy(32), WaveletStrategy(dom),
               HierarchicalStrategy(dom)}};
    }
    case 1: {
      Domain dom({4, 8});
      auto w = std::make_shared<AllRangeWorkload>(dom);
      return {"all-range-2d",
              w,
              {IdentityStrategy(32), WaveletStrategy(dom),
               HierarchicalStrategy(dom)}};
    }
    case 2: {
      Domain dom({4, 4, 2});
      auto sets = AllSubsetsOfSize(3, 2);
      auto w = std::make_shared<MarginalsWorkload>(
          dom, sets, MarginalsWorkload::Flavor::kMarginal);
      return {"two-way-marginals",
              w,
              {IdentityStrategy(32), FourierStrategy(dom, sets),
               DataCubeStrategy(dom, sets).strategy}};
    }
    case 3: {
      auto w = std::make_shared<PrefixWorkload>(32);
      return {"cdf",
              w,
              {IdentityStrategy(32), WaveletStrategy(Domain::OneDim(32)),
               HierarchicalStrategy(Domain::OneDim(32))}};
    }
    case 4: {
      Domain dom({32});
      Rng rng(5);
      auto w = std::make_shared<ExplicitWorkload>(
          builders::RandomRangeWorkload(dom, 60, &rng));
      return {"random-ranges",
              w,
              {IdentityStrategy(32), WaveletStrategy(dom),
               HierarchicalStrategy(dom)}};
    }
    default: {
      Domain dom({32});
      Rng rng(6);
      auto w = std::make_shared<ExplicitWorkload>(
          builders::RandomPredicateWorkload(dom, 50, &rng));
      return {"random-predicates",
              w,
              {IdentityStrategy(32), WaveletStrategy(dom)}};
    }
  }
}

class DesignScenarios : public ::testing::TestWithParam<int> {};

TEST_P(DesignScenarios, BeatsOrMatchesEveryCompetitor) {
  Scenario sc = MakeScenario(GetParam());
  ErrorOptions opts = Opts();
  const linalg::Matrix gram = sc.workload->Gram();
  auto design = optimize::EigenDesign(gram).ValueOrDie();
  const double eigen_err =
      StrategyError(gram, sc.workload->num_queries(), design.strategy, opts);
  for (const auto& comp : sc.competitors) {
    const double comp_err =
        StrategyError(gram, sc.workload->num_queries(), comp, opts);
    EXPECT_LE(eigen_err, comp_err * 1.005)
        << sc.name << ": eigen-design lost to " << comp.name();
  }
  // Never below the lower bound.
  const double bound =
      SvdErrorLowerBound(gram, sc.workload->num_queries(), opts);
  EXPECT_GE(eigen_err, bound * (1 - 1e-4)) << sc.name;
}

TEST_P(DesignScenarios, ApproximationRatioWithinTheorem3) {
  Scenario sc = MakeScenario(GetParam());
  ErrorOptions opts = Opts();
  const linalg::Matrix gram = sc.workload->Gram();
  auto eig = linalg::SymmetricEigen(gram).ValueOrDie();
  auto design = optimize::EigenDesignFromEigen(eig).ValueOrDie();
  const double eigen_err =
      StrategyError(gram, sc.workload->num_queries(), design.strategy, opts);
  const double bound =
      SvdErrorLowerBound(eig.values, sc.workload->num_queries(), opts);
  // Thm. 3: ratio <= (n * sigma_1 / svdb)^{1/4}.
  const double n = static_cast<double>(gram.rows());
  const double sigma1 = eig.values.back();
  const double svdb = SvdBoundValue(eig.values);
  const double thm3 = std::pow(n * sigma1 / svdb, 0.25);
  EXPECT_LE(eigen_err / bound, thm3 * (1 + 1e-9)) << sc.name;
  // Empirically the paper reports <= 1.3 on all evaluated workloads; allow
  // a modest margin for the small sizes used in tests.
  EXPECT_LE(eigen_err / bound, 1.45) << sc.name;
}

TEST_P(DesignScenarios, BeatsWorkloadAsStrategy) {
  Scenario sc = MakeScenario(GetParam());
  ErrorOptions opts = Opts();
  auto design = optimize::EigenDesignForWorkload(*sc.workload).ValueOrDie();
  const double eigen_err = StrategyError(*sc.workload, design.strategy, opts);
  EXPECT_LE(eigen_err, GaussianBaselineError(*sc.workload, opts) * 1.005)
      << sc.name;
}

INSTANTIATE_TEST_SUITE_P(Workloads, DesignScenarios,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(EigenDesign, SensitivityNormalizedToOne) {
  Domain dom({24});
  AllRangeWorkload w(dom);
  auto design = optimize::EigenDesignForWorkload(w).ValueOrDie();
  EXPECT_NEAR(design.strategy.L2Sensitivity(), 1.0, 1e-6);
}

TEST(EigenDesign, CompletedStrategyHasFullRankAndEqualColumns) {
  // Rank-deficient workload: completion must equalize column norms and the
  // strategy must still answer the workload exactly.
  auto w = ExplicitWorkload::FromMatrix(builders::Fig1Matrix(), "Fig1");
  auto design = optimize::EigenDesignForWorkload(w).ValueOrDie();
  EXPECT_EQ(design.rank, 4u);
  const linalg::Matrix& a = design.strategy.matrix();
  // The workload must lie inside the strategy's row space (full rank is not
  // guaranteed for rank-deficient workloads; see Fig. 2 of the paper).
  EXPECT_LT(linalg::RowSpaceResidual(builders::Fig1Matrix(), a), 1e-7);
  const double first = a.ColNorm(0);
  for (std::size_t j = 1; j < a.cols(); ++j) {
    EXPECT_NEAR(a.ColNorm(j), first, 1e-8);
  }
}

TEST(EigenDesign, CompletionOnlyReducesError) {
  auto w = ExplicitWorkload::FromMatrix(builders::Fig1Matrix(), "Fig1");
  ErrorOptions opts = Opts();
  optimize::EigenDesignOptions with;
  optimize::EigenDesignOptions without;
  without.complete_columns = false;
  auto d_with = optimize::EigenDesignForWorkload(w, with).ValueOrDie();
  auto d_without = optimize::EigenDesignForWorkload(w, without).ValueOrDie();
  EXPECT_LE(StrategyError(w, d_with.strategy, opts),
            StrategyError(w, d_without.strategy, opts) + 1e-9);
}

TEST(EigenDesign, AnalyticEigenPathMatchesNumeric) {
  Domain dom({4, 4, 2});
  MarginalsWorkload w = MarginalsWorkload::AllKWay(dom, 2);
  ErrorOptions opts = Opts();
  auto numeric = optimize::EigenDesign(w.Gram()).ValueOrDie();
  auto analytic =
      optimize::EigenDesignFromEigen(w.AnalyticEigen()).ValueOrDie();
  EXPECT_NEAR(StrategyError(w, numeric.strategy, opts),
              StrategyError(w, analytic.strategy, opts), 1e-4);
}

TEST(EigenDesign, PredictedObjectiveMatchesMeasuredError) {
  // predicted_objective is the trace term at sensitivity 1 without
  // completion: error = sqrt(P * objective) under the total convention.
  Domain dom({16});
  AllRangeWorkload w(dom);
  optimize::EigenDesignOptions dopts;
  dopts.complete_columns = false;
  auto design = optimize::EigenDesignForWorkload(w, dopts).ValueOrDie();
  ErrorOptions opts = Opts();
  opts.convention = ErrorConvention::kTotal;
  const double predicted =
      std::sqrt(PFactor(opts) * design.predicted_objective);
  const double measured = StrategyError(w, design.strategy, opts);
  EXPECT_NEAR(measured, predicted, 1e-3 * predicted);
}

TEST(EigenDesign, DualityGapCertificate) {
  Domain dom({48});
  AllRangeWorkload w(dom);
  optimize::EigenDesignOptions dopts;
  dopts.solver.max_iterations = 20000;  // allow full convergence
  dopts.solver.relative_gap_tol = 1e-7;
  auto design = optimize::EigenDesignForWorkload(w, dopts).ValueOrDie();
  EXPECT_LT(design.duality_gap, 1e-4);
}

TEST(EigenDesign, LowRankPathMatchesDensePath) {
  // A small explicit workload over many cells: the low-rank route of
  // EigenDesignForWorkload must agree with the dense-gram route.
  Domain dom({64});
  Rng rng(77);
  auto w = builders::RandomRangeWorkload(dom, 12, &rng);
  ErrorOptions opts = Opts();
  auto via_workload = optimize::EigenDesignForWorkload(w).ValueOrDie();
  auto via_gram = optimize::EigenDesign(w.Gram()).ValueOrDie();
  EXPECT_EQ(via_workload.rank, via_gram.rank);
  EXPECT_NEAR(StrategyError(w, via_workload.strategy, opts),
              StrategyError(w, via_gram.strategy, opts), 5e-3);
}

TEST(EigenDesign, SqrtEigenvalueStrategyBracketsOptimal) {
  // The Thm. 2 strategy A_l (the solver's starting point) must sit between
  // the optimized design and the lower bound.
  Domain dom({32});
  AllRangeWorkload w(dom);
  ErrorOptions opts = Opts();
  auto eig = linalg::SymmetricEigen(w.Gram()).ValueOrDie();
  // Compare without column completion: Program 1 optimizes the
  // pre-completion objective, so dominance over A_l is only guaranteed
  // there (completion then improves both by unmodeled amounts).
  Strategy al = optimize::SqrtEigenvalueStrategy(eig, 1e-10,
                                                 /*complete_columns=*/false);
  optimize::EigenDesignOptions dopts;
  dopts.complete_columns = false;
  auto design = optimize::EigenDesignFromEigen(eig, dopts).ValueOrDie();
  const double e_al = StrategyError(w, al, opts);
  const double e_opt = StrategyError(w, design.strategy, opts);
  const double bound = SvdErrorLowerBound(eig.values, w.num_queries(), opts);
  EXPECT_LE(e_opt, e_al * (1 + 1e-6));
  EXPECT_GE(e_al, bound * (1 - 1e-9));
  EXPECT_NEAR(al.L2Sensitivity(), 1.0, 1e-9);
}

TEST(EigenDesign, WeightsMonotoneInEigenvalueForRanges) {
  // Heavier eigenvalues should never receive (much) smaller weights: the
  // optimizer allocates budget toward important eigen-queries.
  Domain dom({32});
  AllRangeWorkload w(dom);
  auto eig = linalg::SymmetricEigen(w.Gram()).ValueOrDie();
  auto design = optimize::EigenDesignFromEigen(eig).ValueOrDie();
  // kept is in ascending-eigenvalue order for the full-rank case.
  double max_weight_so_far = 0;
  for (std::size_t i = 0; i < design.weights.size(); ++i) {
    max_weight_so_far = std::max(max_weight_so_far, design.weights[i]);
  }
  // The largest-eigenvalue query carries the largest weight.
  EXPECT_NEAR(design.weights.back(), max_weight_so_far,
              0.25 * max_weight_so_far);
}

}  // namespace
}  // namespace dpmm
