// Tests for data vectors, synthetic generators and CSV persistence.
#include <cstdio>

#include <gtest/gtest.h>

#include "data/data_vector.h"
#include "data/generators.h"
#include "data/io.h"

namespace dpmm {
namespace {

TEST(DataVector, TotalsAndMarginals) {
  Domain d({2, 2});
  DataVector dv(d, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(dv.Total(), 10.0);
  EXPECT_DOUBLE_EQ(dv.At({1, 0}), 3.0);
  EXPECT_EQ(dv.Marginal(0), (linalg::Vector{3, 7}));
  EXPECT_EQ(dv.Marginal(1), (linalg::Vector{4, 6}));
}

TEST(Generators, CensusLikeShapeAndScale) {
  DataVector dv = data::GenCensusLike();
  EXPECT_EQ(dv.domain.sizes(), (std::vector<std::size_t>{8, 16, 16}));
  EXPECT_NEAR(dv.Total(), 15e6, 0.01 * 15e6);
  for (double c : dv.counts) ASSERT_GE(c, 0.0);
}

TEST(Generators, AdultLikeShapeAndScale) {
  DataVector dv = data::GenAdultLike();
  EXPECT_EQ(dv.domain.sizes(), (std::vector<std::size_t>{8, 8, 16, 2}));
  EXPECT_NEAR(dv.Total(), 33e3, 0.01 * 33e3);
}

TEST(Generators, DeterministicPerSeed) {
  DataVector a = data::GenCensusLike(99);
  DataVector b = data::GenCensusLike(99);
  DataVector c = data::GenCensusLike(100);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_NE(a.counts, c.counts);
}

TEST(Generators, CensusIsNonUniform) {
  // The income margin must be heavy-tailed, not flat: max/min bucket > 3.
  DataVector dv = data::GenCensusLike();
  auto income = dv.Marginal(2);
  double mn = income[0], mx = income[0];
  for (double v : income) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx / std::max(mn, 1.0), 3.0);
}

TEST(Generators, UniformIsFlat) {
  DataVector dv = data::GenUniform(Domain({4, 4}), 160.0);
  for (double c : dv.counts) EXPECT_DOUBLE_EQ(c, 10.0);
}

TEST(Generators, ZipfIsSkewedAndDeterministic) {
  Domain d({64});
  DataVector a = data::GenZipf(d, 1e5, 1.2, 5);
  DataVector b = data::GenZipf(d, 1e5, 1.2, 5);
  EXPECT_EQ(a.counts, b.counts);
  double mx = 0;
  for (double c : a.counts) mx = std::max(mx, c);
  // The top cell of a Zipf(1.2) over 64 cells holds a large share.
  EXPECT_GT(mx / a.Total(), 0.1);
}

TEST(Io, RoundTrip) {
  Domain d({2, 3});
  DataVector dv(d, {1, 2, 3, 4, 5, 6.5});
  const std::string path = ::testing::TempDir() + "/dpmm_io_test.csv";
  ASSERT_TRUE(data::SaveCsv(dv, path).ok());
  auto loaded = data::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().domain.sizes(), d.sizes());
  EXPECT_EQ(loaded.ValueOrDie().counts, dv.counts);
  std::remove(path.c_str());
}

TEST(Io, MissingFileIsIoError) {
  auto r = data::LoadCsv("/nonexistent/nope.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(Io, MalformedHeaderRejected) {
  const std::string path = ::testing::TempDir() + "/dpmm_io_bad.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not a header\n0,1\n", f);
  std::fclose(f);
  EXPECT_FALSE(data::LoadCsv(path).ok());
  std::remove(path.c_str());
}

// ---- Hardening against user-authored files (served deployments load
// histograms written by hand or exported from other tools).

namespace {

/// Writes `content` verbatim and loads it back.
Result<DataVector> LoadLiteral(const std::string& name,
                               const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  auto result = data::LoadCsv(path);
  std::remove(path.c_str());
  return result;
}

}  // namespace

TEST(IoHardening, CrlfLineEndingsLoadCleanly) {
  auto r = LoadLiteral("crlf.csv",
                       "# domain: 2,2\r\n0,1\r\n1,2\r\n2,3\r\n3,4\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().counts, (linalg::Vector{1, 2, 3, 4}));
}

TEST(IoHardening, TrailingBlankLinesAndStrayWhitespace) {
  auto r = LoadLiteral("messy.csv",
                       "  # domain: 2 , 2  \n"
                       " 0 , 1.5 \n"
                       "\t1,\t2\n"
                       "\n"
                       "3 , 4\n"
                       "\n"
                       "   \n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().counts, (linalg::Vector{1.5, 2, 0, 4}));
}

TEST(IoHardening, NonNumericCellIsStatusNotCrash) {
  auto r = LoadLiteral("badcell.csv", "# domain: 2,2\nzero,1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  // The error names the offending line for the user.
  EXPECT_NE(r.status().message().find(":2:"), std::string::npos)
      << r.status().message();
}

TEST(IoHardening, NonNumericCountIsStatusNotCrash) {
  auto r = LoadLiteral("badcount.csv", "# domain: 2,2\n0,abc\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoHardening, PartiallyNumericFieldsRejected) {
  // strtod/strtoull would happily stop at the junk; strict parsing must not.
  EXPECT_FALSE(LoadLiteral("trail1.csv", "# domain: 4\n1x,3\n").ok());
  EXPECT_FALSE(LoadLiteral("trail2.csv", "# domain: 4\n1,3q\n").ok());
  EXPECT_FALSE(LoadLiteral("neg.csv", "# domain: 4\n-1,3\n").ok());
}

TEST(IoHardening, NonFiniteCountRejected) {
  EXPECT_FALSE(LoadLiteral("inf.csv", "# domain: 4\n0,inf\n").ok());
  EXPECT_FALSE(LoadLiteral("nan.csv", "# domain: 4\n0,nan\n").ok());
  EXPECT_FALSE(LoadLiteral("huge.csv", "# domain: 4\n0,1e999\n").ok());
}

TEST(IoHardening, NonNumericDomainHeaderIsStatusNotCrash) {
  auto r = LoadLiteral("badhdr.csv", "# domain: 2,two\n0,1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(LoadLiteral("zerohdr.csv", "# domain: 2,0\n0,1\n").ok());
}

TEST(IoHardening, OutOfRangeCellNamesTheLine) {
  auto r = LoadLiteral("range.csv", "# domain: 2,2\n0,1\n9,1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
  EXPECT_NE(r.status().message().find(":3:"), std::string::npos)
      << r.status().message();
}

TEST(IoHardening, MissingCommaRejected) {
  EXPECT_FALSE(LoadLiteral("nocomma.csv", "# domain: 4\n0 1\n").ok());
}

}  // namespace
}  // namespace dpmm
