// Tests for data vectors, synthetic generators and CSV persistence.
#include <cstdio>

#include <gtest/gtest.h>

#include "data/data_vector.h"
#include "data/generators.h"
#include "data/io.h"

namespace dpmm {
namespace {

TEST(DataVector, TotalsAndMarginals) {
  Domain d({2, 2});
  DataVector dv(d, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(dv.Total(), 10.0);
  EXPECT_DOUBLE_EQ(dv.At({1, 0}), 3.0);
  EXPECT_EQ(dv.Marginal(0), (linalg::Vector{3, 7}));
  EXPECT_EQ(dv.Marginal(1), (linalg::Vector{4, 6}));
}

TEST(Generators, CensusLikeShapeAndScale) {
  DataVector dv = data::GenCensusLike();
  EXPECT_EQ(dv.domain.sizes(), (std::vector<std::size_t>{8, 16, 16}));
  EXPECT_NEAR(dv.Total(), 15e6, 0.01 * 15e6);
  for (double c : dv.counts) ASSERT_GE(c, 0.0);
}

TEST(Generators, AdultLikeShapeAndScale) {
  DataVector dv = data::GenAdultLike();
  EXPECT_EQ(dv.domain.sizes(), (std::vector<std::size_t>{8, 8, 16, 2}));
  EXPECT_NEAR(dv.Total(), 33e3, 0.01 * 33e3);
}

TEST(Generators, DeterministicPerSeed) {
  DataVector a = data::GenCensusLike(99);
  DataVector b = data::GenCensusLike(99);
  DataVector c = data::GenCensusLike(100);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_NE(a.counts, c.counts);
}

TEST(Generators, CensusIsNonUniform) {
  // The income margin must be heavy-tailed, not flat: max/min bucket > 3.
  DataVector dv = data::GenCensusLike();
  auto income = dv.Marginal(2);
  double mn = income[0], mx = income[0];
  for (double v : income) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx / std::max(mn, 1.0), 3.0);
}

TEST(Generators, UniformIsFlat) {
  DataVector dv = data::GenUniform(Domain({4, 4}), 160.0);
  for (double c : dv.counts) EXPECT_DOUBLE_EQ(c, 10.0);
}

TEST(Generators, ZipfIsSkewedAndDeterministic) {
  Domain d({64});
  DataVector a = data::GenZipf(d, 1e5, 1.2, 5);
  DataVector b = data::GenZipf(d, 1e5, 1.2, 5);
  EXPECT_EQ(a.counts, b.counts);
  double mx = 0;
  for (double c : a.counts) mx = std::max(mx, c);
  // The top cell of a Zipf(1.2) over 64 cells holds a large share.
  EXPECT_GT(mx / a.Total(), 0.1);
}

TEST(Io, RoundTrip) {
  Domain d({2, 3});
  DataVector dv(d, {1, 2, 3, 4, 5, 6.5});
  const std::string path = ::testing::TempDir() + "/dpmm_io_test.csv";
  ASSERT_TRUE(data::SaveCsv(dv, path).ok());
  auto loaded = data::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().domain.sizes(), d.sizes());
  EXPECT_EQ(loaded.ValueOrDie().counts, dv.counts);
  std::remove(path.c_str());
}

TEST(Io, MissingFileIsIoError) {
  auto r = data::LoadCsv("/nonexistent/nope.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(Io, MalformedHeaderRejected) {
  const std::string path = ::testing::TempDir() + "/dpmm_io_bad.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not a header\n0,1\n", f);
  std::fclose(f);
  EXPECT_FALSE(data::LoadCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpmm
