// Unit and property tests for the symmetric eigensolver (tred2 + tql2),
// cross-validated against the independently implemented Jacobi solver.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "util/rng.h"

namespace dpmm {
namespace linalg {
namespace {

Matrix RandomSymmetric(std::size_t n, Rng* rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = rng->Gaussian();
      m(j, i) = m(i, j);
    }
  }
  return m;
}

// || A V - V diag(d) ||_max
double ResidualNorm(const Matrix& a, const SymmetricEigenResult& eig) {
  Matrix av = MatMul(a, eig.vectors);
  double mx = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      mx = std::max(mx,
                    std::fabs(av(i, j) - eig.vectors(i, j) * eig.values[j]));
    }
  }
  return mx;
}

double OrthonormalityError(const Matrix& v) {
  return Gram(v).MaxAbsDiff(Matrix::Identity(v.cols()));
}

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix d = Matrix::Diagonal({5, -1, 3});
  auto eig = SymmetricEigen(d).ValueOrDie();
  EXPECT_NEAR(eig.values[0], -1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 5.0, 1e-12);
  EXPECT_LT(ResidualNorm(d, eig), 1e-10);
}

TEST(SymmetricEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix m = Matrix::FromRows({{2, 1}, {1, 2}});
  auto eig = SymmetricEigen(m).ValueOrDie();
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, OnesMatrixDegenerateSpectrum) {
  // J has eigenvalue n once and 0 with multiplicity n-1.
  const std::size_t n = 9;
  Matrix j(n, n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) j(a, b) = 1.0;
  }
  auto eig = SymmetricEigen(j).ValueOrDie();
  for (std::size_t i = 0; i + 1 < n; ++i) EXPECT_NEAR(eig.values[i], 0.0, 1e-9);
  EXPECT_NEAR(eig.values[n - 1], static_cast<double>(n), 1e-9);
  EXPECT_LT(OrthonormalityError(eig.vectors), 1e-10);
}

TEST(SymmetricEigen, SizeOne) {
  Matrix m = Matrix::FromRows({{7}});
  auto eig = SymmetricEigen(m).ValueOrDie();
  EXPECT_NEAR(eig.values[0], 7.0, 1e-14);
}

class EigenSizes : public ::testing::TestWithParam<int> {};

TEST_P(EigenSizes, ReconstructsRandomSymmetric) {
  const int n = GetParam();
  Rng rng(n * 17);
  Matrix a = RandomSymmetric(n, &rng);
  auto eig = SymmetricEigen(a).ValueOrDie();
  EXPECT_LT(ResidualNorm(a, eig), 1e-8 * (1 + a.FrobeniusNorm()));
  EXPECT_LT(OrthonormalityError(eig.vectors), 1e-9);
  EXPECT_TRUE(std::is_sorted(eig.values.begin(), eig.values.end()));
}

TEST_P(EigenSizes, AgreesWithJacobi) {
  const int n = GetParam();
  if (n > 64) GTEST_SKIP() << "Jacobi cross-check kept small";
  Rng rng(n * 31);
  Matrix a = RandomSymmetric(n, &rng);
  auto ql = SymmetricEigen(a).ValueOrDie();
  auto jac = JacobiEigen(a).ValueOrDie();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(ql.values[i], jac.values[i], 1e-8 * (1 + std::fabs(ql.values[i])));
  }
}

TEST_P(EigenSizes, PsdGramHasNonnegativeSpectrum) {
  const int n = GetParam();
  Rng rng(n * 13);
  Matrix b(n + 2, n);
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (int j = 0; j < n; ++j) b(i, j) = rng.Gaussian();
  }
  auto eig = SymmetricEigen(Gram(b)).ValueOrDie();
  for (double v : eig.values) EXPECT_GT(v, -1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizes,
                         ::testing::Values(2, 3, 4, 7, 16, 33, 64, 129));

TEST(SymmetricEigen, TraceAndFrobeniusInvariants) {
  Rng rng(5);
  Matrix a = RandomSymmetric(40, &rng);
  auto eig = SymmetricEigen(a).ValueOrDie();
  double tr = 0;
  double fro2 = 0;
  for (double v : eig.values) {
    tr += v;
    fro2 += v * v;
  }
  EXPECT_NEAR(tr, a.Trace(), 1e-8);
  EXPECT_NEAR(std::sqrt(fro2), a.FrobeniusNorm(), 1e-8);
}

TEST(SymmetricEigen, RepeatedEigenvaluesBlockMatrix) {
  // diag(2, 2, 2, 5): eigenvector basis for the 2-eigenspace is arbitrary
  // but must still be orthonormal and reconstructing.
  Matrix m = Matrix::Diagonal({2, 2, 2, 5});
  // Rotate by a random orthogonal similarity to hide the structure.
  Rng rng(8);
  Matrix s = RandomSymmetric(4, &rng);
  auto rot = SymmetricEigen(s).ValueOrDie();  // orthogonal vectors
  Matrix a = MatMul(MatMul(rot.vectors, m), rot.vectors.Transposed());
  auto eig = SymmetricEigen(a).ValueOrDie();
  EXPECT_NEAR(eig.values[0], 2.0, 1e-9);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-9);
  EXPECT_NEAR(eig.values[2], 2.0, 1e-9);
  EXPECT_NEAR(eig.values[3], 5.0, 1e-9);
  EXPECT_LT(ResidualNorm(a, eig), 1e-8);
}

TEST(KronEigen, MatchesNumericOnKroneckerProduct) {
  Rng rng(21);
  Matrix a = RandomSymmetric(4, &rng);
  Matrix b = RandomSymmetric(3, &rng);
  auto ea = SymmetricEigen(a).ValueOrDie();
  auto eb = SymmetricEigen(b).ValueOrDie();
  auto combined = KronEigen({ea, eb});

  // Build the Kronecker product explicitly and compare spectra.
  Matrix k(12, 12);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int p = 0; p < 3; ++p) {
        for (int q = 0; q < 3; ++q) {
          k(i * 3 + p, j * 3 + q) = a(i, j) * b(p, q);
        }
      }
    }
  }
  auto numeric = SymmetricEigen(k).ValueOrDie();
  for (int i = 0; i < 12; ++i) {
    EXPECT_NEAR(combined.values[i], numeric.values[i], 1e-8);
  }
  // Combined eigenvectors diagonalize K.
  EXPECT_LT(OrthonormalityError(combined.vectors), 1e-9);
  EXPECT_LT(ResidualNorm(k, combined), 1e-8);
}

TEST(SymmetricEigen, ZeroClusterDeflationRegression) {
  // Regression: normalized marginal Gram matrices have huge zero-eigenvalue
  // clusters where a purely relative QL deflation test never fires (both
  // neighbouring diagonals sit at roundoff). Must converge and reconstruct.
  Matrix b(6, 24);  // rank <= 6 over 24 dims -> 18 zero eigenvalues
  Rng rng(101);
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      b(i, j) = rng.Gaussian() * ((j % 3 == 0) ? 100.0 : 1e-3);
    }
  }
  Matrix g = Gram(b);
  auto eig = SymmetricEigen(g);
  ASSERT_TRUE(eig.ok()) << eig.status().ToString();
  EXPECT_LT(ResidualNorm(g, eig.ValueOrDie()),
            1e-8 * (1 + g.FrobeniusNorm()));
  int nonzero = 0;
  for (double v : eig.ValueOrDie().values) {
    if (v > 1e-6 * eig.ValueOrDie().values.back()) ++nonzero;
  }
  EXPECT_LE(nonzero, 6);
}

TEST(LowRankGramEigen, MatchesDenseNonzeroSpectrum) {
  Rng rng(33);
  // 5 queries over 40 cells: rank <= 5.
  Matrix w(5, 40);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 40; ++j) w(i, j) = rng.Gaussian();
  }
  auto low = LowRankGramEigen(w).ValueOrDie();
  EXPECT_EQ(low.values.size(), 5u);
  EXPECT_EQ(low.vectors.rows(), 40u);
  EXPECT_EQ(low.vectors.cols(), 5u);

  Matrix gram = Gram(w);
  auto dense = SymmetricEigen(gram).ValueOrDie();
  // The last 5 dense eigenvalues are the nonzero ones.
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(low.values[k], dense.values[35 + k], 1e-8);
  }
  // Returned vectors are unit eigenvectors of W^T W.
  EXPECT_LT(OrthonormalityError(low.vectors), 1e-9);
  Matrix gv = MatMul(gram, low.vectors);
  for (std::size_t j = 0; j < 5; ++j) {
    for (std::size_t i = 0; i < 40; ++i) {
      ASSERT_NEAR(gv(i, j), low.vectors(i, j) * low.values[j], 1e-8);
    }
  }
}

TEST(LowRankGramEigen, DropsDependentRows) {
  Matrix w = Matrix::FromRows({{1, 0, 0, 0}, {2, 0, 0, 0}, {0, 1, 1, 0}});
  auto low = LowRankGramEigen(w).ValueOrDie();
  EXPECT_EQ(low.values.size(), 2u);  // rank 2
}

TEST(JacobiEigen, MatchesKnownSpectrum) {
  Matrix m = Matrix::FromRows({{2, 1}, {1, 2}});
  auto eig = JacobiEigen(m).ValueOrDie();
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

}  // namespace
}  // namespace linalg
}  // namespace dpmm
