// Tests for Kronecker products and the materialization-free Kronecker
// matrix-vector product.
#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/kronecker.h"
#include "util/rng.h"

namespace dpmm {
namespace linalg {
namespace {

Matrix RandomMatrix(std::size_t r, std::size_t c, Rng* rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng->Gaussian();
  }
  return m;
}

TEST(Kron, SmallKnown) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3}, {4}});
  Matrix k = Kron(a, b);
  ASSERT_EQ(k.rows(), 2u);
  ASSERT_EQ(k.cols(), 2u);
  EXPECT_EQ(k(0, 0), 3.0);
  EXPECT_EQ(k(0, 1), 6.0);
  EXPECT_EQ(k(1, 0), 4.0);
  EXPECT_EQ(k(1, 1), 8.0);
}

TEST(Kron, IdentityKronIdentity) {
  Matrix k = Kron(Matrix::Identity(3), Matrix::Identity(4));
  EXPECT_EQ(k.MaxAbsDiff(Matrix::Identity(12)), 0.0);
}

TEST(Kron, MixedProductProperty) {
  // (A kron B)(C kron D) = (AC) kron (BD).
  Rng rng(2);
  Matrix a = RandomMatrix(3, 2, &rng);
  Matrix b = RandomMatrix(2, 4, &rng);
  Matrix c = RandomMatrix(2, 3, &rng);
  Matrix d = RandomMatrix(4, 2, &rng);
  Matrix lhs = MatMul(Kron(a, b), Kron(c, d));
  Matrix rhs = Kron(MatMul(a, c), MatMul(b, d));
  EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-10);
}

TEST(KronList, ThreeFactors) {
  Rng rng(3);
  Matrix a = RandomMatrix(2, 2, &rng);
  Matrix b = RandomMatrix(3, 2, &rng);
  Matrix c = RandomMatrix(2, 3, &rng);
  Matrix klist = KronList({a, b, c});
  Matrix manual = Kron(Kron(a, b), c);
  EXPECT_LT(klist.MaxAbsDiff(manual), 1e-12);
}

class KronVecShapes
    : public ::testing::TestWithParam<std::vector<std::pair<int, int>>> {};

TEST_P(KronVecShapes, MatchesExplicitProduct) {
  Rng rng(7);
  std::vector<Matrix> factors;
  std::size_t cols = 1;
  for (auto [r, c] : GetParam()) {
    factors.push_back(RandomMatrix(r, c, &rng));
    cols *= c;
  }
  Vector x(cols);
  for (auto& v : x) v = rng.Gaussian();
  Vector fast = KronMatVec(factors, x);
  Vector slow = MatVec(KronList(factors), x);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_NEAR(fast[i], slow[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KronVecShapes,
    ::testing::Values(
        std::vector<std::pair<int, int>>{{2, 3}},
        std::vector<std::pair<int, int>>{{2, 3}, {4, 2}},
        std::vector<std::pair<int, int>>{{1, 5}, {3, 3}},
        std::vector<std::pair<int, int>>{{3, 2}, {1, 4}, {2, 2}},
        std::vector<std::pair<int, int>>{{4, 4}, {4, 4}, {2, 2}}));

TEST(PackBatch, RoundTripsInterleavedLayout) {
  Rng rng(11);
  std::vector<Vector> xs(3, Vector(5));
  for (auto& x : xs) {
    for (auto& v : x) v = rng.Gaussian();
  }
  const Vector packed = PackBatch(xs);
  ASSERT_EQ(packed.size(), 15u);
  // Element i of vector b sits at packed[i * batch + b].
  EXPECT_EQ(packed[0 * 3 + 1], xs[1][0]);
  EXPECT_EQ(packed[4 * 3 + 2], xs[2][4]);
  EXPECT_EQ(UnpackBatch(packed, 3), xs);
}

TEST(KronMatVecBatch, BitIdenticalToSingleVectorCalls) {
  // The contract behind batched releases: each interleaved vector's result
  // must equal KronMatVec on that vector alone *bitwise*, across shapes
  // (including rectangular factors and a span wide enough to tile).
  Rng rng(13);
  const std::vector<Matrix> factors = {RandomMatrix(3, 2, &rng),
                                       RandomMatrix(4, 4, &rng),
                                       RandomMatrix(2, 3, &rng)};
  for (std::size_t batch : {1u, 2u, 7u}) {
    std::vector<Vector> xs(batch, Vector(2 * 4 * 3));
    for (auto& x : xs) {
      for (auto& v : x) v = rng.Gaussian();
    }
    const Vector out = KronMatVecBatch(factors, PackBatch(xs), batch);
    const std::vector<Vector> got = UnpackBatch(out, batch);
    for (std::size_t b = 0; b < batch; ++b) {
      EXPECT_EQ(got[b], KronMatVec(factors, xs[b])) << "batch " << batch
                                                    << " vector " << b;
    }
  }
}

TEST(KronMatVecBatch, TiledWidePassStaysBitIdentical) {
  // Exercises the L2-tiling path: the tile budget is (1 MiB)/((c+r)*8) =
  // 1024 elements for 64x64 factors, and axis 0 spans stride * batch =
  // 64 * 160 = 10240 elements — 10 tiles per span, the same splitting the
  // production batch-release sizes hit. Tiling reorders across elements
  // only, so results must still match the untiled single-vector pass
  // exactly.
  Rng rng(17);
  const std::vector<Matrix> factors = {RandomMatrix(64, 64, &rng),
                                       RandomMatrix(64, 64, &rng)};
  const std::size_t batch = 160;
  std::vector<Vector> xs(batch, Vector(64 * 64));
  for (auto& x : xs) {
    for (auto& v : x) v = rng.Gaussian();
  }
  const std::vector<Vector> got =
      UnpackBatch(KronMatVecBatch(factors, PackBatch(xs), batch), batch);
  for (std::size_t b = 0; b < batch; ++b) {
    ASSERT_EQ(got[b], KronMatVec(factors, xs[b])) << "vector " << b;
  }
}

}  // namespace
}  // namespace linalg
}  // namespace dpmm
