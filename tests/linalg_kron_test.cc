// Tests for Kronecker products and the materialization-free Kronecker
// matrix-vector product.
#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/kronecker.h"
#include "util/rng.h"

namespace dpmm {
namespace linalg {
namespace {

Matrix RandomMatrix(std::size_t r, std::size_t c, Rng* rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng->Gaussian();
  }
  return m;
}

TEST(Kron, SmallKnown) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3}, {4}});
  Matrix k = Kron(a, b);
  ASSERT_EQ(k.rows(), 2u);
  ASSERT_EQ(k.cols(), 2u);
  EXPECT_EQ(k(0, 0), 3.0);
  EXPECT_EQ(k(0, 1), 6.0);
  EXPECT_EQ(k(1, 0), 4.0);
  EXPECT_EQ(k(1, 1), 8.0);
}

TEST(Kron, IdentityKronIdentity) {
  Matrix k = Kron(Matrix::Identity(3), Matrix::Identity(4));
  EXPECT_EQ(k.MaxAbsDiff(Matrix::Identity(12)), 0.0);
}

TEST(Kron, MixedProductProperty) {
  // (A kron B)(C kron D) = (AC) kron (BD).
  Rng rng(2);
  Matrix a = RandomMatrix(3, 2, &rng);
  Matrix b = RandomMatrix(2, 4, &rng);
  Matrix c = RandomMatrix(2, 3, &rng);
  Matrix d = RandomMatrix(4, 2, &rng);
  Matrix lhs = MatMul(Kron(a, b), Kron(c, d));
  Matrix rhs = Kron(MatMul(a, c), MatMul(b, d));
  EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-10);
}

TEST(KronList, ThreeFactors) {
  Rng rng(3);
  Matrix a = RandomMatrix(2, 2, &rng);
  Matrix b = RandomMatrix(3, 2, &rng);
  Matrix c = RandomMatrix(2, 3, &rng);
  Matrix klist = KronList({a, b, c});
  Matrix manual = Kron(Kron(a, b), c);
  EXPECT_LT(klist.MaxAbsDiff(manual), 1e-12);
}

class KronVecShapes
    : public ::testing::TestWithParam<std::vector<std::pair<int, int>>> {};

TEST_P(KronVecShapes, MatchesExplicitProduct) {
  Rng rng(7);
  std::vector<Matrix> factors;
  std::size_t cols = 1;
  for (auto [r, c] : GetParam()) {
    factors.push_back(RandomMatrix(r, c, &rng));
    cols *= c;
  }
  Vector x(cols);
  for (auto& v : x) v = rng.Gaussian();
  Vector fast = KronMatVec(factors, x);
  Vector slow = MatVec(KronList(factors), x);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_NEAR(fast[i], slow[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KronVecShapes,
    ::testing::Values(
        std::vector<std::pair<int, int>>{{2, 3}},
        std::vector<std::pair<int, int>>{{2, 3}, {4, 2}},
        std::vector<std::pair<int, int>>{{1, 5}, {3, 3}},
        std::vector<std::pair<int, int>>{{3, 2}, {1, 4}, {2, 2}},
        std::vector<std::pair<int, int>>{{4, 4}, {4, 4}, {2, 2}}));

}  // namespace
}  // namespace linalg
}  // namespace dpmm
