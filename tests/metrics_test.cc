// Observability suite: the metrics registry (counters, gauges, log-bucketed
// histograms and their quantile contract), the thread-local PerfContext and
// its RAII timers, and the trace recorder's Chrome trace_event output.
// The 4-thread concurrency cases run under TSan via tools/ci.sh
// (TSAN_TESTS), which is what lets util/metrics.h and util/trace.h declare
// mutex members at all.
#include "util/metrics.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/trace.h"

namespace dpmm {
namespace {

TEST(Counter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Counter, FourThreadsSumExactly) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
  g.Set(0);
  EXPECT_EQ(g.Value(), 0);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 32u);
  EXPECT_EQ(h.Sum(), 31u * 32u / 2u);
  EXPECT_EQ(h.Max(), 31u);
  // Values below 32 each own a bucket, so every quantile is exact.
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.5), 15u);
  EXPECT_EQ(h.Quantile(1.0), 31u);
}

TEST(Histogram, BucketInverseAndRelativeError) {
  // BucketLowerBound(BucketOf(v)) is the largest bucket boundary <= v, and
  // the gap to v is bounded by 1/16 of the bound (the documented contract).
  const std::uint64_t probes[] = {
      0,  1,  31,  32,  33,  47,  48,  63,   64,          100,
      1023, 1024, 1025, 123456789, std::uint64_t{1} << 40,
      (std::uint64_t{1} << 40) + 12345, ~std::uint64_t{0}};
  for (std::uint64_t v : probes) {
    const std::size_t b = Histogram::BucketOf(v);
    ASSERT_LT(b, Histogram::kNumBuckets) << v;
    const std::uint64_t lb = Histogram::BucketLowerBound(b);
    EXPECT_LE(lb, v) << v;
    if (v >= 32) {
      EXPECT_LE(v - lb, lb / 16) << v;
      // Boundaries map back to themselves: the inverse pair is tight.
      EXPECT_EQ(Histogram::BucketOf(lb), b) << v;
      EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketOf(lb)), lb) << v;
    } else {
      EXPECT_EQ(lb, v);
    }
  }
}

TEST(Histogram, QuantilesExactOnBucketBoundaries) {
  // Samples placed on bucket lower bounds are recovered exactly by
  // Quantile(), which is how the latency tests can assert precise numbers.
  Histogram h;
  const std::uint64_t a = std::uint64_t{1} << 10;            // 1024
  const std::uint64_t b = (std::uint64_t{1} << 10) | (5 << 6);  // 1344
  const std::uint64_t c = std::uint64_t{1} << 20;
  for (int i = 0; i < 50; ++i) h.Record(a);
  for (int i = 0; i < 45; ++i) h.Record(b);
  for (int i = 0; i < 5; ++i) h.Record(c);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_EQ(h.Quantile(0.50), a);
  EXPECT_EQ(h.Quantile(0.95), b);
  EXPECT_EQ(h.Quantile(0.99), c);
  EXPECT_EQ(h.Max(), c);
}

TEST(Histogram, MaxIsExactOffBoundary) {
  Histogram h;
  h.Record(1000003);  // not a bucket boundary
  EXPECT_EQ(h.Max(), 1000003u);
  EXPECT_LE(h.Quantile(1.0), 1000003u);
  EXPECT_GE(h.Quantile(1.0), 1000003u - 1000003u / 16);
}

TEST(Histogram, FourThreadsCountExactly) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<std::uint64_t>(t) * 1000 + (i & 0xFF));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  EXPECT_EQ(h.Max(), 3u * 1000u + 0xFFu);
}

TEST(MetricsRegistry, ValidNameContract) {
  EXPECT_TRUE(MetricsRegistry::ValidName("dpmm.serve.wal.appends"));
  EXPECT_TRUE(MetricsRegistry::ValidName("dpmm.util.thread_pool.queue_depth"));
  EXPECT_TRUE(MetricsRegistry::ValidName("dpmm.a.b"));
  EXPECT_FALSE(MetricsRegistry::ValidName(""));
  EXPECT_FALSE(MetricsRegistry::ValidName("dpmm"));
  EXPECT_FALSE(MetricsRegistry::ValidName("dpmm.serve"));       // 2 segments
  EXPECT_FALSE(MetricsRegistry::ValidName("serve.wal.appends"));  // no dpmm.
  EXPECT_FALSE(MetricsRegistry::ValidName("dpmm.Serve.wal"));   // uppercase
  EXPECT_FALSE(MetricsRegistry::ValidName("dpmm..wal"));        // empty seg
  EXPECT_FALSE(MetricsRegistry::ValidName("dpmm.serve.wal."));  // trailing
  EXPECT_FALSE(MetricsRegistry::ValidName("dpmm.serve.wal-x"));  // hyphen
}

TEST(MetricsRegistry, GetReturnsStablePointer) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("dpmm.test.metrics.stable_pointer");
  Counter* b = reg.GetCounter("dpmm.test.metrics.stable_pointer");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
}

TEST(MetricsRegistry, FourThreadsRegisterAndRecord) {
  // Registration races with recording on the shared registry; TSan watches.
  auto& reg = MetricsRegistry::Global();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &ready] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      Counter* c = reg.GetCounter("dpmm.test.metrics.race_counter");
      Histogram* h = reg.GetHistogram("dpmm.test.metrics.race_hist");
      for (int i = 0; i < 10000; ++i) {
        c->Add(1);
        h->Record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("dpmm.test.metrics.race_counter")->Value(),
            4u * 10000u);
  EXPECT_EQ(reg.GetHistogram("dpmm.test.metrics.race_hist")->Count(),
            4u * 10000u);
}

TEST(MetricsRegistry, SnapshotAndJson) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("dpmm.test.metrics.snap_counter")->Add(5);
  reg.GetGauge("dpmm.test.metrics.snap_gauge")->Set(-2);
  reg.GetHistogram("dpmm.test.metrics.snap_hist")->Record(1024);
  const MetricsSnapshot snap = reg.Snapshot();

  bool counter_seen = false, gauge_seen = false, hist_seen = false;
  for (const auto& c : snap.counters) {
    if (c.first == "dpmm.test.metrics.snap_counter") {
      counter_seen = true;
      EXPECT_EQ(c.second, 5u);
    }
  }
  for (const auto& g : snap.gauges) {
    if (g.first == "dpmm.test.metrics.snap_gauge") {
      gauge_seen = true;
      EXPECT_EQ(g.second, -2);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "dpmm.test.metrics.snap_hist") {
      hist_seen = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.p50, 1024u);
      EXPECT_EQ(h.max, 1024u);
    }
  }
  EXPECT_TRUE(counter_seen);
  EXPECT_TRUE(gauge_seen);
  EXPECT_TRUE(hist_seen);

  // Structural well-formedness: balanced braces outside strings, the three
  // top-level sections, and the recorded values. (cli_api_test.sh feeds the
  // same ToJson output through a real JSON parser.)
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"dpmm.test.metrics.snap_counter\": 5"),
            std::string::npos);
  EXPECT_NE(json.find("\"dpmm.test.metrics.snap_gauge\": -2"),
            std::string::npos);
  int depth = 0;
  bool in_string = false;
  for (char ch : json) {
    if (ch == '"') in_string = !in_string;
    if (in_string) continue;
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(MetricsRegistry, StandardInventoryIsIdempotentAndValid) {
  auto& reg = MetricsRegistry::Global();
  reg.RegisterStandardInventory();
  const MetricsSnapshot first = reg.Snapshot();
  reg.RegisterStandardInventory();  // re-registering must not reset values
  const MetricsSnapshot second = reg.Snapshot();
  EXPECT_EQ(first.counters.size(), second.counters.size());
  EXPECT_EQ(first.gauges.size(), second.gauges.size());
  EXPECT_EQ(first.histograms.size(), second.histograms.size());
  for (const auto& c : second.counters) {
    EXPECT_TRUE(MetricsRegistry::ValidName(c.first)) << c.first;
  }
  for (const auto& g : second.gauges) {
    EXPECT_TRUE(MetricsRegistry::ValidName(g.first)) << g.first;
  }
  for (const auto& h : second.histograms) {
    EXPECT_TRUE(MetricsRegistry::ValidName(h.name)) << h.name;
  }
}

TEST(PerfContext, ResetAndToString) {
  PerfContext* ctx = GetPerfContext();
  ctx->Reset();
  EXPECT_EQ(ctx->ToString(), "idle");
  ctx->root_cache_probes = 3;
  ctx->root_cache_hits = 2;
  EXPECT_EQ(ctx->ToString(), "root_cache_probes=3 root_cache_hits=2");
  ctx->Reset();
  EXPECT_EQ(ctx->ToString(), "idle");
}

TEST(PerfContext, ThreadLocalIsolation) {
  PerfContext* main_ctx = GetPerfContext();
  main_ctx->Reset();
  main_ctx->root_solves = 7;
  PerfContext* other_ctx = nullptr;
  std::uint64_t other_solves = 123;
  std::thread t([&] {
    other_ctx = GetPerfContext();
    other_solves = other_ctx->root_solves;
    other_ctx->root_solves = 99;
  });
  t.join();
  EXPECT_NE(other_ctx, main_ctx);
  EXPECT_EQ(other_solves, 0u);      // fresh context on the other thread
  EXPECT_EQ(main_ctx->root_solves, 7u);  // untouched by the other thread
  main_ctx->Reset();
}

TEST(PerfContext, NestedTimersAccumulateIndependently) {
  PerfContext* ctx = GetPerfContext();
  ctx->Reset();
  {
    PerfTimer outer(&ctx->normal_solve_ns);
    {
      PerfTimer inner(&ctx->wal_append_ns);
      // Spin until the clock has visibly advanced so both fields are
      // provably nonzero (a sleep would slow the suite for no extra proof).
      const std::uint64_t t0 = MonotonicNanos();
      while (MonotonicNanos() == t0) {
      }
    }
  }
  EXPECT_GT(ctx->normal_solve_ns, 0u);
  EXPECT_GT(ctx->wal_append_ns, 0u);
  // The inner scope is part of the outer scope's wall time.
  EXPECT_GE(ctx->normal_solve_ns, ctx->wal_append_ns);
  ctx->Reset();
}

TEST(Trace, RecorderProducesChromeTraceJson) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable();
  const std::size_t before = rec.num_events();
  {
    TraceSpan span("MetricsTestSpan", "test");
    const std::uint64_t t0 = MonotonicNanos();
    while (MonotonicNanos() == t0) {
    }
  }
  EXPECT_EQ(rec.num_events(), before + 1);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"MetricsTestSpan\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  int depth = 0;
  bool in_string = false;
  for (char ch : json) {
    if (ch == '"') in_string = !in_string;
    if (in_string) continue;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Trace, FourThreadsRecordConcurrently) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable();
  const std::size_t before = rec.num_events();
  constexpr int kThreads = 4;
  constexpr int kSpans = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan span("ConcurrentSpan", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.num_events(), before + kThreads * kSpans);
}

TEST(Trace, FlushWritesTheJsonFile) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable();
  { TraceSpan span("FlushedSpan", "test"); }
  const std::string path = ::testing::TempDir() + "metrics_test_trace.json";
  const Status status = rec.Flush(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"FlushedSpan\""), std::string::npos);
}

}  // namespace
}  // namespace dpmm
