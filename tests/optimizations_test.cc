// Tests for the Sec. 4 performance optimizations: eigen-query separation and
// the principal-vectors method. Both must stay close to the full design and
// above the lower bound.
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/qr.h"
#include "linalg/svd.h"
#include "mechanism/bounds.h"
#include "mechanism/error.h"
#include "optimize/eigen_design.h"
#include "optimize/eigen_separation.h"
#include "optimize/principal_vectors.h"
#include "workload/marginal_workloads.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

ErrorOptions Opts() {
  ErrorOptions o;
  o.privacy = {0.5, 1e-4};
  return o;
}

class GroupSizes : public ::testing::TestWithParam<int> {};

TEST_P(GroupSizes, SeparationStaysNearFullDesign) {
  const std::size_t g = GetParam();
  Domain dom({48});
  AllRangeWorkload w(dom);
  ErrorOptions opts = Opts();
  auto eig = linalg::SymmetricEigen(w.Gram()).ValueOrDie();
  auto full = optimize::EigenDesignFromEigen(eig).ValueOrDie();
  auto sep = optimize::EigenSeparationDesign(eig, g).ValueOrDie();
  const double full_err = StrategyError(w, full.strategy, opts);
  const double sep_err = StrategyError(w, sep.strategy, opts);
  EXPECT_EQ(sep.num_groups, (48 + g - 1) / g);
  // Within 20% of the full design (paper: ~5-11% at the paper's sizes).
  EXPECT_LE(sep_err, 1.20 * full_err) << "group size " << g;
  // Never below the bound.
  EXPECT_GE(sep_err,
            SvdErrorLowerBound(eig.values, w.num_queries(), opts) * (1 - 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroupSizes, ::testing::Values(1, 2, 4, 8, 16, 48));

TEST(EigenSeparation, FullGroupEqualsFullDesign) {
  // One group containing every eigen-query is the unrestricted problem (the
  // second-stage scale is then redundant).
  Domain dom({24});
  AllRangeWorkload w(dom);
  ErrorOptions opts = Opts();
  auto eig = linalg::SymmetricEigen(w.Gram()).ValueOrDie();
  auto full = optimize::EigenDesignFromEigen(eig).ValueOrDie();
  auto sep = optimize::EigenSeparationDesign(eig, 24).ValueOrDie();
  EXPECT_NEAR(StrategyError(w, sep.strategy, opts),
              StrategyError(w, full.strategy, opts), 1e-3);
}

class PrincipalCounts : public ::testing::TestWithParam<int> {};

TEST_P(PrincipalCounts, PrincipalVectorsStaysNearFullDesign) {
  const std::size_t k = GetParam();
  Domain dom({48});
  AllRangeWorkload w(dom);
  ErrorOptions opts = Opts();
  auto eig = linalg::SymmetricEigen(w.Gram()).ValueOrDie();
  auto full = optimize::EigenDesignFromEigen(eig).ValueOrDie();
  auto pv = optimize::PrincipalVectorsDesign(eig, k).ValueOrDie();
  EXPECT_EQ(pv.num_principal, k);
  const double full_err = StrategyError(w, full.strategy, opts);
  const double pv_err = StrategyError(w, pv.strategy, opts);
  EXPECT_LE(pv_err, 1.25 * full_err) << "k = " << k;
  EXPECT_GE(pv_err,
            SvdErrorLowerBound(eig.values, w.num_queries(), opts) * (1 - 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Counts, PrincipalCounts,
                         ::testing::Values(2, 5, 12, 24, 47));

TEST(PrincipalVectors, AllVectorsEqualsFullDesign) {
  Domain dom({24});
  AllRangeWorkload w(dom);
  ErrorOptions opts = Opts();
  auto eig = linalg::SymmetricEigen(w.Gram()).ValueOrDie();
  auto full = optimize::EigenDesignFromEigen(eig).ValueOrDie();
  auto pv = optimize::PrincipalVectorsDesign(eig, 24).ValueOrDie();
  EXPECT_EQ(pv.num_principal, 24u);
  EXPECT_NEAR(StrategyError(w, pv.strategy, opts),
              StrategyError(w, full.strategy, opts), 1e-4);
}

TEST(PrincipalVectors, MoreVectorsNeverHurtMuch) {
  // Error should be (weakly) improving as k grows.
  Domain dom({32});
  AllRangeWorkload w(dom);
  ErrorOptions opts = Opts();
  auto eig = linalg::SymmetricEigen(w.Gram()).ValueOrDie();
  double prev = 1e100;
  for (std::size_t k : {2, 8, 16, 32}) {
    auto pv = optimize::PrincipalVectorsDesign(eig, k).ValueOrDie();
    const double err = StrategyError(w, pv.strategy, opts);
    EXPECT_LE(err, prev * 1.02) << "k = " << k;
    prev = err;
  }
}

TEST(Optimizations, WorkOnRankDeficientMarginals) {
  Domain dom({4, 4, 2});
  MarginalsWorkload w = MarginalsWorkload::AllKWay(dom, 1);
  ErrorOptions opts = Opts();
  auto eig = w.AnalyticEigen();
  auto sep = optimize::EigenSeparationDesign(eig, 2).ValueOrDie();
  auto pv = optimize::PrincipalVectorsDesign(eig, 3).ValueOrDie();
  const double bound =
      SvdErrorLowerBound(eig.values, w.num_queries(), opts);
  EXPECT_GE(StrategyError(w, sep.strategy, opts), bound * (1 - 1e-6));
  EXPECT_GE(StrategyError(w, pv.strategy, opts), bound * (1 - 1e-6));
  // Both strategies must answer the workload exactly (the workload lies in
  // their row spaces even though completion need not give full rank).
  const linalg::Matrix wm = w.Materialize();
  EXPECT_LT(linalg::RowSpaceResidual(wm, sep.strategy.matrix()), 1e-7);
  EXPECT_LT(linalg::RowSpaceResidual(wm, pv.strategy.matrix()), 1e-7);
}

}  // namespace
}  // namespace dpmm
