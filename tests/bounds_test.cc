// Tests for the singular value bound (Thm. 2): closed-form cases and the
// property that every constructed strategy's error dominates the bound.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "mechanism/bounds.h"
#include "mechanism/error.h"
#include "optimize/eigen_design.h"
#include "strategy/hierarchical.h"
#include "strategy/wavelet.h"
#include "util/rng.h"
#include "workload/builders.h"
#include "workload/marginal_workloads.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

ErrorOptions Opts() {
  ErrorOptions o;
  o.privacy = {0.5, 1e-4};
  return o;
}

TEST(SvdBound, IdentityWorkload) {
  // W = I: all eigenvalues 1, svdb = n^2/n = n... (sum of sqrt = n)^2/n = n.
  linalg::Vector ev(8, 1.0);
  EXPECT_DOUBLE_EQ(SvdBoundValue(ev), 8.0);
}

TEST(SvdBound, ScalesQuadratically) {
  // Doubling W scales eigenvalues of W^T W by 4 and svdb by 4.
  linalg::Vector ev{1, 2, 3};
  linalg::Vector ev4{4, 8, 12};
  EXPECT_NEAR(SvdBoundValue(ev4), 4.0 * SvdBoundValue(ev), 1e-12);
}

TEST(SvdBound, ClipsNegativeRoundingNoise) {
  linalg::Vector ev{-1e-14, 1.0};
  EXPECT_NEAR(SvdBoundValue(ev), 0.5, 1e-9);
}

TEST(SvdBound, IdentityStrategyAchievesBoundForIdentityWorkload) {
  // For W = I the identity strategy is optimal and its error equals the
  // bound exactly.
  auto w = ExplicitWorkload::FromMatrix(linalg::Matrix::Identity(16), "I");
  ErrorOptions opts = Opts();
  const double err = StrategyError(w, IdentityStrategy(16), opts);
  const double bound =
      SvdErrorLowerBound(w.Gram(), w.num_queries(), opts);
  EXPECT_NEAR(err, bound, 1e-9);
}

TEST(SvdBound, InvariantUnderPermutation) {
  Domain dom({24});
  auto base = std::make_shared<AllRangeWorkload>(dom);
  Rng rng(3);
  PermutedWorkload perm(base, rng.Permutation(24));
  ErrorOptions opts = Opts();
  EXPECT_NEAR(SvdErrorLowerBound(base->Gram(), base->num_queries(), opts),
              SvdErrorLowerBound(perm.Gram(), perm.num_queries(), opts),
              1e-8);
}

// Property: the bound is below the error of every strategy we can build.
class BoundDominance : public ::testing::TestWithParam<int> {};

TEST_P(BoundDominance, EveryStrategyErrorIsAboveBound) {
  const int which = GetParam();
  std::unique_ptr<Workload> w;
  Domain dom({16});
  switch (which) {
    case 0:
      w = std::make_unique<AllRangeWorkload>(dom);
      break;
    case 1:
      w = std::make_unique<PrefixWorkload>(16);
      break;
    case 2: {
      Rng rng(9);
      w = std::make_unique<ExplicitWorkload>(
          builders::RandomPredicateWorkload(dom, 30, &rng));
      break;
    }
    default: {
      Domain d2({4, 4});
      w = std::make_unique<MarginalsWorkload>(
          MarginalsWorkload::AllKWay(d2, 1));
      break;
    }
  }
  ErrorOptions opts = Opts();
  const linalg::Matrix gram = w->Gram();
  const double bound = SvdErrorLowerBound(gram, w->num_queries(), opts);

  const Domain& wd = w->domain();
  std::vector<Strategy> strategies;
  strategies.push_back(IdentityStrategy(wd.NumCells()));
  strategies.push_back(WaveletStrategy(wd));
  strategies.push_back(HierarchicalStrategy(wd));
  strategies.push_back(
      optimize::EigenDesign(gram).ValueOrDie().strategy);
  for (const auto& s : strategies) {
    const double err = StrategyError(gram, w->num_queries(), s, opts);
    EXPECT_GE(err, bound * (1.0 - 1e-4))
        << "strategy " << s.name() << " beat the lower bound";
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, BoundDominance,
                         ::testing::Values(0, 1, 2, 3));

TEST(SvdBound, ConventionScaling) {
  linalg::Vector ev{1, 4, 9};
  ErrorOptions per = Opts();
  ErrorOptions total = Opts();
  total.convention = ErrorConvention::kTotal;
  EXPECT_NEAR(SvdErrorLowerBound(ev, 7, total),
              SvdErrorLowerBound(ev, 7, per) * std::sqrt(7.0), 1e-10);
}

}  // namespace
}  // namespace dpmm
