// Unit tests for the dense matrix type and BLAS kernels.
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace dpmm {
namespace linalg {
namespace {

Matrix RandomMatrix(std::size_t r, std::size_t c, Rng* rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng->Gaussian();
  }
  return m;
}

Matrix NaiveMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 0.0);
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
}

TEST(Matrix, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(2, 1), 6.0);
}

TEST(Matrix, Identity) {
  Matrix i = Matrix::Identity(4);
  EXPECT_EQ(i.Trace(), 4.0);
  EXPECT_EQ(i.FrobeniusNorm(), 2.0);
  EXPECT_EQ(i(0, 1), 0.0);
}

TEST(Matrix, Diagonal) {
  Matrix d = Matrix::Diagonal({1, 2, 3});
  EXPECT_EQ(d(1, 1), 2.0);
  EXPECT_EQ(d(0, 2), 0.0);
  EXPECT_EQ(d.Trace(), 6.0);
}

TEST(Matrix, RowColSetRow) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.Row(1), (Vector{3, 4}));
  EXPECT_EQ(m.Col(0), (Vector{1, 3}));
  m.SetRow(0, {7, 8});
  EXPECT_EQ(m(0, 1), 8.0);
}

TEST(Matrix, TransposeSmall) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, TransposeLargeBlocked) {
  Rng rng(1);
  Matrix m = RandomMatrix(67, 129, &rng);  // exercise partial blocks
  Matrix t = m.Transposed();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      ASSERT_EQ(t(j, i), m(i, j));
    }
  }
  EXPECT_EQ(t.Transposed().MaxAbsDiff(m), 0.0);
}

TEST(Matrix, VStack) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix s = a.VStack(b);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_EQ(s(2, 0), 5.0);
  // Stacking with an empty matrix is the identity operation.
  Matrix empty;
  EXPECT_EQ(empty.VStack(b).rows(), 2u);
  EXPECT_EQ(b.VStack(empty).rows(), 2u);
}

TEST(Matrix, ColumnNorms) {
  Matrix m = Matrix::FromRows({{3, 1}, {4, -1}});
  EXPECT_DOUBLE_EQ(m.ColNorm(0), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxColNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxColAbsSum(), 7.0);
}

TEST(Matrix, ScaleAndNorm) {
  Matrix m = Matrix::FromRows({{3, 4}});
  m.Scale(2.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 10.0);
}

TEST(VectorOps, DotNormAxpy) {
  Vector a{1, 2, 3};
  Vector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm1({-3, 4}), 7.0);
  Axpy(2.0, a, &b);
  EXPECT_EQ(b, (Vector{6, 9, 12}));
  ScaleVec(0.5, &b);
  EXPECT_EQ(b, (Vector{3, 4.5, 6}));
  EXPECT_EQ(Add({1, 1}, {2, 3}), (Vector{3, 4}));
  EXPECT_EQ(Sub({1, 1}, {2, 3}), (Vector{-1, -2}));
  EXPECT_DOUBLE_EQ(MaxAbs({-7, 2}), 7.0);
  EXPECT_DOUBLE_EQ(SumVec({1, 2, 3}), 6.0);
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatMulMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 10 + n);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b = RandomMatrix(k, n, &rng);
  EXPECT_LT(MatMul(a, b).MaxAbsDiff(NaiveMul(a, b)), 1e-10);
}

TEST_P(GemmSizes, MatMulTNMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  Matrix a = RandomMatrix(k, m, &rng);
  Matrix b = RandomMatrix(k, n, &rng);
  EXPECT_LT(MatMulTN(a, b).MaxAbsDiff(NaiveMul(a.Transposed(), b)), 1e-10);
}

TEST_P(GemmSizes, MatMulNTMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 7 + k * 3 + n);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b = RandomMatrix(n, k, &rng);
  EXPECT_LT(MatMulNT(a, b).MaxAbsDiff(NaiveMul(a, b.Transposed())), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{5, 1, 7}, std::tuple{16, 16, 16},
                      std::tuple{33, 17, 65}, std::tuple{128, 64, 32},
                      std::tuple{1, 50, 1}, std::tuple{7, 129, 3}));

class SquareSizes : public ::testing::TestWithParam<int> {};

TEST_P(SquareSizes, GramMatchesNaive) {
  const int n = GetParam();
  Rng rng(n);
  Matrix a = RandomMatrix(2 * n + 1, n, &rng);
  Matrix g = Gram(a);
  Matrix expect = NaiveMul(a.Transposed(), a);
  EXPECT_LT(g.MaxAbsDiff(expect), 1e-9);
  // Symmetry is exact by construction.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) ASSERT_EQ(g(i, j), g(j, i));
  }
}

TEST_P(SquareSizes, MatVecMatchesNaive) {
  const int n = GetParam();
  Rng rng(n + 99);
  Matrix a = RandomMatrix(n + 3, n, &rng);
  Vector x(n);
  for (auto& v : x) v = rng.Gaussian();
  Vector y = MatVec(a, x);
  Vector yt = MatTVec(a.Transposed(), x);
  ASSERT_EQ(y.size(), a.rows());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], yt[i], 1e-10);
  }
}

TEST_P(SquareSizes, TraceOfProduct) {
  const int n = GetParam();
  Rng rng(n + 5);
  Matrix a = RandomMatrix(n, n + 2, &rng);
  Matrix b = RandomMatrix(n + 2, n, &rng);
  EXPECT_NEAR(TraceOfProduct(a, b), NaiveMul(a, b).Trace(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SquareSizes,
                         ::testing::Values(1, 2, 3, 8, 17, 64, 130));

}  // namespace
}  // namespace linalg
}  // namespace dpmm
