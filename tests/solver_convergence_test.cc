// Convergence regressions for the accelerated Program-1 solvers: golden-gap
// bounds (gap <= tol within an iteration budget) for ascent / FISTA /
// L-BFGS on small dense and Kronecker instances, adaptive-restart behavior
// when momentum overshoots, the structured SolverReport contract, and the
// L-BFGS two-loop machinery itself. Runs under the `solver` ctest label so
// CI fails fast on convergence regressions.
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "optimize/dual_solver.h"
#include "optimize/eigen_design.h"
#include "optimize/lbfgs.h"
#include "optimize/weighting_problem.h"
#include "util/rng.h"
#include "workload/gram.h"
#include "workload/marginal_workloads.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace optimize {
namespace {

using linalg::Matrix;
using linalg::Vector;

WeightingProblem DenseEigenInstance(std::size_t n) {
  Matrix gram = gram::AllRange1D(n);
  auto eig = linalg::SymmetricEigen(gram).ValueOrDie();
  std::vector<std::size_t> kept;
  return MakeEigenProblem(eig, 1e-10, &kept);
}

SolverOptions Tight(SolverMethod method, double tol, int iters) {
  SolverOptions opt;
  opt.method = method;
  opt.relative_gap_tol = tol;
  opt.max_iterations = iters;
  return opt;
}

// ---- Golden-gap regressions, dense instances ----

TEST(SolverConvergence, AscentReachesClassicFloorOnDense) {
  auto sol =
      SolveWeighting(DenseEigenInstance(32),
                     Tight(SolverMethod::kAscent, 1e-12, 3000))
          .ValueOrDie();
  // The plain ascent plateaus around 1e-4..1e-6 here; it must stay at least
  // that good (and its certificate must be consistent).
  EXPECT_LT(sol.relative_gap, 5e-4);
  EXPECT_LE(sol.dual_bound, sol.objective + 1e-9);
}

TEST(SolverConvergence, FistaBeatsAscentOnDense) {
  auto sol = SolveWeighting(DenseEigenInstance(32),
                            Tight(SolverMethod::kFista, 1e-12, 3000))
                 .ValueOrDie();
  EXPECT_LT(sol.relative_gap, 1e-6);
}

TEST(SolverConvergence, LbfgsReachesDeepGapOnDense) {
  // The tentpole claim: where ascent stalls around 1e-4, the staged L-BFGS
  // pipeline pushes the certified duality gap to ~1e-10.
  auto sol = SolveWeighting(DenseEigenInstance(32),
                            Tight(SolverMethod::kLbfgs, 1e-12, 3000))
                 .ValueOrDie();
  EXPECT_LT(sol.relative_gap, 1e-9);
}

TEST(SolverConvergence, LbfgsHandlesL1ExponentInstance) {
  // q = 2 (the eps-DP weighting): a random non-doubly-stochastic instance,
  // the shape that once trapped the box phase in a slow creep. The phase
  // rotation must reach deep gaps here too.
  Rng rng(7);
  WeightingProblem p;
  p.exponent = 2;
  p.c.resize(12);
  for (auto& v : p.c) v = 0.1 + 3.0 * rng.UniformDouble();
  p.constraints = Matrix(20, 12);
  for (std::size_t j = 0; j < 20; ++j) {
    for (std::size_t i = 0; i < 12; ++i) {
      p.constraints(j, i) = rng.UniformDouble();
    }
  }
  auto sol =
      SolveWeighting(p, Tight(SolverMethod::kLbfgs, 1e-11, 3000)).ValueOrDie();
  EXPECT_LT(sol.relative_gap, 1e-9);
}

// ---- Golden-gap regressions, implicit Kronecker instances ----

TEST(SolverConvergence, LbfgsReachesDeepGapOnKronOperator) {
  AllRangeWorkload w(Domain({8, 8}));
  const auto keig = *w.ImplicitEigen();
  Vector c;
  std::vector<std::size_t> kept = KeptSpectrum(keig.values, 1e-10, &c);
  const KronEigenConstraintOperator op(&keig.basis, kept);

  auto ascent =
      SolveWeighting(c, op, 1, Tight(SolverMethod::kAscent, 1e-12, 3000))
          .ValueOrDie();
  auto lbfgs =
      SolveWeighting(c, op, 1, Tight(SolverMethod::kLbfgs, 1e-12, 3000))
          .ValueOrDie();
  // Ascent stalls (its stall detector fires well above the tolerance);
  // L-BFGS must go at least three orders of magnitude deeper and stay
  // consistent with the ascent's bound.
  EXPECT_GT(ascent.relative_gap, 1e-8);
  EXPECT_LT(lbfgs.relative_gap, 1e-9);
  EXPECT_LT(lbfgs.relative_gap, 1e-3 * ascent.relative_gap);
  EXPECT_GE(lbfgs.dual_bound, ascent.dual_bound - 1e-9 * ascent.objective);
}

TEST(SolverConvergence, ScaledStartIsExactOnMarginalsSpectrum) {
  // The marginals eigen-problem's optimum is a uniform rescale of the
  // all-ones start; the gradient methods' scaled start lands on it exactly,
  // so the solve certifies a ~1e-12 gap within a handful of iterations.
  MarginalsWorkload w = MarginalsWorkload::AllKWay(Domain({4, 4, 4}), 2);
  const auto keig = *w.ImplicitEigen();
  Vector c;
  std::vector<std::size_t> kept = KeptSpectrum(keig.values, 1e-10, &c);
  const KronEigenConstraintOperator op(&keig.basis, kept);
  auto sol =
      SolveWeighting(c, op, 1, Tight(SolverMethod::kLbfgs, 1e-11, 3000))
          .ValueOrDie();
  EXPECT_LT(sol.relative_gap, 1e-11);
  EXPECT_LE(sol.iterations, 50);
}

TEST(SolverConvergence, SeparableWarmStartCertifiesProductSpectra) {
  // Product spectrum (3D all-range): for q = 1 the weighting problem
  // separates per axis, so the accelerated design composes the per-axis
  // optima and the joint solve only certifies — deep gap, ~zero joint
  // iterations. This is the mechanism behind the 64^3 headline number.
  AllRangeWorkload w(Domain({6, 5, 4}));
  const auto keig = *w.ImplicitEigen();
  EigenDesignOptions accel;
  accel.solver.method = SolverMethod::kLbfgs;
  accel.solver.relative_gap_tol = 1e-10;
  auto design = EigenDesignFromKronEigen(keig, accel);
  ASSERT_TRUE(design.ok());
  const auto& d = design.ValueOrDie();
  EXPECT_LT(d.duality_gap, 1e-10);
  // The joint solve certifies the composed point immediately: its own
  // phases run ~no iterations. (d.solver_iterations is much larger — it
  // honestly folds in the per-axis warm-start solves.)
  EXPECT_LE(d.solver_report.fista_iterations +
                d.solver_report.lbfgs_iterations,
            5);
  EXPECT_GT(d.solver_iterations,
            d.solver_report.fista_iterations +
                d.solver_report.lbfgs_iterations);

  // The certified optimum agrees with the generic (default-ascent) design.
  auto baseline = EigenDesignFromKronEigen(keig, EigenDesignOptions{});
  ASSERT_TRUE(baseline.ok());
  EXPECT_NEAR(d.predicted_objective,
              baseline.ValueOrDie().predicted_objective,
              1e-4 * d.predicted_objective);
  EXPECT_LE(d.predicted_objective,
            baseline.ValueOrDie().predicted_objective * (1.0 + 1e-12));
}

TEST(SolverConvergence, SeparablePathDeclinesSummedSpectra) {
  // Marginals share the factored basis but their spectrum is a *sum* of
  // products — the separable fast path must detect that and decline, with
  // the generic pipeline still converging (the scaled start is optimal).
  MarginalsWorkload w = MarginalsWorkload::AllKWay(Domain({4, 3, 3}), 2);
  const auto keig = *w.ImplicitEigen();
  EigenDesignOptions accel;
  accel.solver.method = SolverMethod::kLbfgs;
  accel.solver.relative_gap_tol = 1e-10;
  auto design = EigenDesignFromKronEigen(keig, accel);
  ASSERT_TRUE(design.ok());
  EXPECT_LT(design.ValueOrDie().duality_gap, 1e-10);
}

// ---- Adaptive restart and report structure ----

TEST(SolverConvergence, FistaRestartsWhenMomentumOvershoots) {
  // On the all-range spectrum the momentum sequence overshoots the narrow
  // curved valley; the function-value restart must fire (and keep firing)
  // rather than let the dual oscillate — and the best dual bound must stay
  // monotone through it all (overshoot may never corrupt the certificate).
  auto sol = SolveWeighting(DenseEigenInstance(32),
                            Tight(SolverMethod::kFista, 1e-12, 500))
                 .ValueOrDie();
  EXPECT_GT(sol.report.restarts, 0);
  EXPECT_LE(sol.dual_bound, sol.objective + 1e-9);
}

TEST(SolverConvergence, RestartKeepsTrajectoryDualMonotone) {
  SolverOptions opt = Tight(SolverMethod::kFista, 1e-12, 300);
  opt.record_trajectory = true;
  auto sol = SolveWeighting(DenseEigenInstance(16), opt).ValueOrDie();
  ASSERT_GT(sol.report.trajectory.size(), 10u);
  ASSERT_GT(sol.report.restarts, 0);
  double prev = -1e300;
  for (const auto& sample : sol.report.trajectory) {
    EXPECT_GE(sample.dual, prev);  // best-so-far bound never regresses
    prev = sample.dual;
  }
  // The final state can only improve on the last recorded sample (moves
  // accepted after the last observation still fold into the bound).
  const auto& last = sol.report.trajectory.back();
  EXPECT_LE(sol.relative_gap, last.gap + 1e-12);
  EXPECT_GE(sol.dual_bound, last.dual - 1e-9 * std::fabs(sol.dual_bound));
}

TEST(SolverConvergence, ReportPhaseAccounting) {
  auto sol = SolveWeighting(DenseEigenInstance(32),
                            Tight(SolverMethod::kLbfgs, 1e-12, 2000))
                 .ValueOrDie();
  const SolverReport& r = sol.report;
  EXPECT_EQ(r.method, SolverMethod::kLbfgs);
  EXPECT_EQ(r.iterations, sol.iterations);
  EXPECT_GT(r.fista_iterations, 0);
  EXPECT_GT(r.lbfgs_iterations, 0);
  EXPECT_GE(r.phase_switch_iteration, 0);
  EXPECT_NEAR(r.final_gap, sol.relative_gap, 1e-15);
  EXPECT_TRUE(r.trajectory.empty());  // off unless requested
  // Ascent runs report their own method and no momentum phases.
  auto ascent = SolveWeighting(DenseEigenInstance(16),
                               Tight(SolverMethod::kAscent, 1e-12, 500))
                    .ValueOrDie();
  EXPECT_EQ(ascent.report.method, SolverMethod::kAscent);
  EXPECT_EQ(ascent.report.fista_iterations, 0);
  EXPECT_EQ(ascent.report.lbfgs_iterations, 0);
  EXPECT_EQ(ascent.report.phase_switch_iteration, -1);
}

TEST(SolverConvergence, MethodsAgreeOnTheOptimum) {
  const WeightingProblem p = DenseEigenInstance(24);
  auto a = SolveWeighting(p, Tight(SolverMethod::kAscent, 1e-9, 3000))
               .ValueOrDie();
  auto f = SolveWeighting(p, Tight(SolverMethod::kFista, 1e-9, 3000))
               .ValueOrDie();
  auto l = SolveWeighting(p, Tight(SolverMethod::kLbfgs, 1e-9, 3000))
               .ValueOrDie();
  // All three certify the same optimum (within their achieved gaps).
  EXPECT_NEAR(f.objective, l.objective, 1e-5 * l.objective);
  EXPECT_NEAR(a.objective, l.objective, 1e-3 * l.objective);
  EXPECT_GE(l.dual_bound, a.dual_bound - 1e-9 * l.objective);
}

TEST(SolverConvergence, ParseSolverMethodVocabulary) {
  EXPECT_EQ(ParseSolverMethod("ascent"), SolverMethod::kAscent);
  EXPECT_EQ(ParseSolverMethod("fista"), SolverMethod::kFista);
  EXPECT_EQ(ParseSolverMethod("lbfgs"), SolverMethod::kLbfgs);
  EXPECT_FALSE(ParseSolverMethod("newton").has_value());
  EXPECT_FALSE(ParseSolverMethod("").has_value());
  EXPECT_STREQ(SolverMethodName(SolverMethod::kLbfgs), "lbfgs");
}

// ---- L-BFGS two-loop machinery ----

TEST(LbfgsHistory, SecantEquationHoldsForNewestPair) {
  // The defining BFGS property: after pushing (s, y), H y = s holds exactly
  // for the newest pair, independent of the seed scaling or older pairs.
  const Matrix a = Matrix::FromRows({{4.0, 1.0, 0.0},
                                     {1.0, 3.0, 0.5},
                                     {0.0, 0.5, 2.0}});
  LbfgsHistory hist(3);
  const std::vector<Vector> steps = {{1.0, 0.0, 0.0},
                                     {0.2, 1.0, 0.0},
                                     {0.1, -0.3, 1.0}};
  for (const auto& s : steps) {
    Vector y = linalg::MatVec(a, s);
    ASSERT_TRUE(hist.Push(s, y));
    const Vector hy = hist.ApplyInverseHessian(y);
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_NEAR(hy[i], s[i], 1e-12);
    }
  }
  // Also exact under a diagonal seed metric.
  const Vector h0 = {0.25, 1.0, 4.0};
  const Vector y_last = linalg::MatVec(a, steps.back());
  const Vector hy = hist.ApplyInverseHessian(y_last, &h0);
  for (std::size_t i = 0; i < steps.back().size(); ++i) {
    EXPECT_NEAR(hy[i], steps.back()[i], 1e-12);
  }
}

TEST(LbfgsHistory, RejectsNonCurvaturePairsAndEvictsOldest) {
  LbfgsHistory hist(2);
  EXPECT_FALSE(hist.Push({1.0, 0.0}, {-1.0, 0.0}));  // s^T y < 0
  EXPECT_FALSE(hist.Push({1.0, 0.0}, {0.0, 1.0}));   // s^T y = 0
  EXPECT_EQ(hist.size(), 0u);
  EXPECT_TRUE(hist.Push({1.0, 0.0}, {2.0, 0.0}));
  EXPECT_TRUE(hist.Push({0.0, 1.0}, {0.0, 3.0}));
  EXPECT_TRUE(hist.Push({1.0, 1.0}, {2.0, 3.0}));  // evicts the first
  EXPECT_EQ(hist.size(), 2u);
  hist.Clear();
  EXPECT_EQ(hist.size(), 0u);
  // Empty history: identity (plain gradient direction).
  const Vector g = {3.0, -4.0};
  EXPECT_EQ(hist.ApplyInverseHessian(g), g);
}

TEST(LbfgsHistory, DiagonalSeedScalesEmptyApply) {
  LbfgsHistory hist(4);
  const Vector g = {2.0, -6.0};
  const Vector h0 = {0.5, 2.0};
  const Vector r = hist.ApplyInverseHessian(g, &h0);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], -12.0);
}

TEST(LbfgsProjection, ActiveSetAndMasking) {
  Vector x = {0.0, 1e-15, 0.5, 0.0};
  Vector grad = {1.0, 2.0, 3.0, -1.0};
  // Pinned at the bound with the gradient pushing outward: 0 and 1.
  // Coordinate 3 is at the bound but its gradient pulls inward: free.
  const std::vector<char> active = ActiveBoundSet(x, grad, 1e-12);
  EXPECT_EQ(active, (std::vector<char>{1, 1, 0, 0}));
  Vector d = {5.0, 5.0, 5.0, 5.0};
  MaskDirection(active, &d);
  EXPECT_EQ(d, (Vector{0.0, 0.0, 5.0, 5.0}));
  Vector v = {-1.0, 2.0, -0.0, 3.0};
  ProjectNonNegative(&v);
  for (double val : v) EXPECT_GE(val, 0.0);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[3], 3.0);
}

}  // namespace
}  // namespace optimize
}  // namespace dpmm
