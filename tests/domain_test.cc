// Tests for multi-dimensional domains, cell indexing and cell conditions.
#include <gtest/gtest.h>

#include "domain/cell_condition.h"
#include "domain/domain.h"
#include "workload/builders.h"

namespace dpmm {
namespace {

TEST(Domain, BasicProperties) {
  Domain d({8, 16, 16});
  EXPECT_EQ(d.num_attributes(), 3u);
  EXPECT_EQ(d.NumCells(), 2048u);
  EXPECT_EQ(d.size(1), 16u);
  EXPECT_EQ(d.ToString(), "[8 x 16 x 16]");
}

TEST(Domain, OneDim) {
  Domain d = Domain::OneDim(5);
  EXPECT_EQ(d.num_attributes(), 1u);
  EXPECT_EQ(d.NumCells(), 5u);
}

TEST(Domain, IndexRoundTrip) {
  Domain d({3, 4, 5});
  for (std::size_t cell = 0; cell < d.NumCells(); ++cell) {
    const auto multi = d.MultiIndex(cell);
    ASSERT_EQ(d.CellIndex(multi), cell);
  }
}

TEST(Domain, RowMajorOrder) {
  // Attribute 0 is the slowest-varying index, matching the Kronecker
  // conventions used across workloads and strategies.
  Domain d({2, 3});
  EXPECT_EQ(d.CellIndex({0, 0}), 0u);
  EXPECT_EQ(d.CellIndex({0, 2}), 2u);
  EXPECT_EQ(d.CellIndex({1, 0}), 3u);
  EXPECT_EQ(d.CellIndex({1, 2}), 5u);
}

TEST(Domain, NamesDefaultAndCustom) {
  Domain d({2, 2});
  EXPECT_EQ(d.attribute_name(0), "A1");
  Domain named({2, 2}, {"gender", "gpa"});
  EXPECT_EQ(named.attribute_name(1), "gpa");
}

TEST(Domain, Equality) {
  EXPECT_TRUE(Domain({2, 3}) == Domain({2, 3}));
  EXPECT_FALSE(Domain({2, 3}) == Domain({3, 2}));
}

TEST(AttrSets, AllSubsetsOfSize) {
  auto one_way = AllSubsetsOfSize(4, 1);
  EXPECT_EQ(one_way.size(), 4u);
  auto two_way = AllSubsetsOfSize(4, 2);
  EXPECT_EQ(two_way.size(), 6u);
  EXPECT_EQ(two_way[0], (AttrSet{0, 1}));
  auto zero_way = AllSubsetsOfSize(3, 0);
  EXPECT_EQ(zero_way.size(), 1u);
  EXPECT_TRUE(zero_way[0].empty());
}

TEST(AttrSets, AllSubsets) {
  auto all = AllSubsets(3);
  EXPECT_EQ(all.size(), 8u);
  EXPECT_TRUE(all[0].empty());
  EXPECT_EQ(all[7], (AttrSet{0, 1, 2}));
}

TEST(CellLabels, DefaultLabels) {
  Domain d({2, 2});
  CellLabels labels = CellLabels::Default(d);
  EXPECT_EQ(labels.Condition(0), "A1=0 AND A2=0");
  EXPECT_EQ(labels.Condition(3), "A1=1 AND A2=1");
  EXPECT_EQ(labels.AllConditions().size(), 4u);
}

TEST(CellLabels, Fig1ConditionsMatchPaper) {
  // Fig. 1(a): phi_1 = gpa in [1.0,2.0) AND gender = M ... in our encoding
  // gender varies slowest (cells 1-4 male, 5-8 female).
  CellLabels labels = builders::Fig1Labels();
  EXPECT_EQ(labels.Condition(0), "gender=M AND gpa in [1.0,2.0)");
  EXPECT_EQ(labels.Condition(7), "gender=F AND gpa in [3.5,4.0)");
  EXPECT_EQ(labels.domain().NumCells(), 8u);
}

}  // namespace
}  // namespace dpmm
