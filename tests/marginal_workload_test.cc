// Tests for marginal and range-marginal workloads, including the analytic
// Kronecker-Helmert eigendecomposition.
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "util/rng.h"
#include "workload/marginal_workloads.h"

namespace dpmm {
namespace {

using linalg::Matrix;
using linalg::Vector;
using Flavor = MarginalsWorkload::Flavor;

TEST(HelmertBasis, Orthonormal) {
  for (std::size_t d : {2, 3, 5, 8, 16}) {
    Matrix b = HelmertBasis(d);
    EXPECT_LT(linalg::Gram(b).MaxAbsDiff(Matrix::Identity(d)), 1e-10) << d;
    // First column is the uniform vector.
    for (std::size_t i = 0; i < d; ++i) {
      EXPECT_NEAR(b(i, 0), 1.0 / std::sqrt(static_cast<double>(d)), 1e-12);
    }
  }
}

class MarginalConfigs
    : public ::testing::TestWithParam<std::tuple<std::vector<std::size_t>, int>> {
 protected:
  MarginalsWorkload MakeWorkload(Flavor flavor) const {
    auto [sizes, way] = GetParam();
    Domain domain(sizes);
    return MarginalsWorkload::AllKWay(domain, way, flavor);
  }
};

TEST_P(MarginalConfigs, GramMatchesMaterialized) {
  for (Flavor f : {Flavor::kMarginal, Flavor::kRangeMarginal}) {
    MarginalsWorkload w = MakeWorkload(f);
    Matrix explicit_w = w.Materialize();
    EXPECT_EQ(w.num_queries(), explicit_w.rows());
    EXPECT_LT(w.Gram().MaxAbsDiff(linalg::Gram(explicit_w)), 1e-9);
    EXPECT_NEAR(w.L2Sensitivity(), explicit_w.MaxColNorm(), 1e-9);
  }
}

TEST_P(MarginalConfigs, AnswerMatchesMaterialized) {
  for (Flavor f : {Flavor::kMarginal, Flavor::kRangeMarginal}) {
    MarginalsWorkload w = MakeWorkload(f);
    Matrix explicit_w = w.Materialize();
    Rng rng(1);
    Vector x(w.num_cells());
    for (auto& v : x) v = std::floor(50 * rng.UniformDouble());
    Vector fast = w.Answer(x);
    Vector slow = linalg::MatVec(explicit_w, x);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_NEAR(fast[i], slow[i], 1e-8);
    }
  }
}

TEST_P(MarginalConfigs, NormalizedGramMatchesMaterialized) {
  for (Flavor f : {Flavor::kMarginal, Flavor::kRangeMarginal}) {
    MarginalsWorkload w = MakeWorkload(f);
    auto explicit_w = ExplicitWorkload(w.domain(), w.Materialize(), "x");
    EXPECT_LT(w.NormalizedGram().MaxAbsDiff(explicit_w.NormalizedGram()), 1e-9);
  }
}

TEST_P(MarginalConfigs, AnalyticEigenDiagonalizesGram) {
  MarginalsWorkload w = MakeWorkload(Flavor::kMarginal);
  ASSERT_TRUE(w.HasAnalyticEigen());
  auto eig = w.AnalyticEigen();
  const Matrix g = w.Gram();
  // Orthonormal eigenvectors.
  EXPECT_LT(linalg::Gram(eig.vectors).MaxAbsDiff(Matrix::Identity(g.rows())),
            1e-9);
  // A V = V D.
  Matrix av = linalg::MatMul(g, eig.vectors);
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      ASSERT_NEAR(av(i, j), eig.vectors(i, j) * eig.values[j], 1e-8);
    }
  }
  // Spectrum agrees with the numeric eigensolver.
  auto numeric = linalg::SymmetricEigen(g).ValueOrDie();
  for (std::size_t i = 0; i < eig.values.size(); ++i) {
    ASSERT_NEAR(eig.values[i], numeric.values[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MarginalConfigs,
    ::testing::Values(std::tuple{std::vector<std::size_t>{4, 3}, 1},
                      std::tuple{std::vector<std::size_t>{4, 3}, 2},
                      std::tuple{std::vector<std::size_t>{2, 3, 4}, 1},
                      std::tuple{std::vector<std::size_t>{2, 3, 4}, 2},
                      std::tuple{std::vector<std::size_t>{3, 3, 2}, 3}));

TEST(MarginalsWorkload, TotalQueryIsZeroWayMarginal) {
  Domain d({3, 4});
  MarginalsWorkload w(d, {AttrSet{}}, Flavor::kMarginal);
  EXPECT_EQ(w.num_queries(), 1u);
  Vector x(12, 1.0);
  EXPECT_DOUBLE_EQ(w.Answer(x)[0], 12.0);
}

TEST(MarginalsWorkload, AllMarginalsCountsQueries) {
  Domain d({2, 3});
  MarginalsWorkload w = MarginalsWorkload::AllMarginals(d);
  // {} -> 1, {0} -> 2, {1} -> 3, {0,1} -> 6.
  EXPECT_EQ(w.num_queries(), 12u);
  EXPECT_NEAR(w.L2Sensitivity(), 2.0, 1e-12);  // sqrt(4 marginals)
}

TEST(MarginalsWorkload, SensitivityIsSqrtNumSets) {
  Domain d({4, 4, 4});
  MarginalsWorkload w = MarginalsWorkload::AllKWay(d, 2);
  EXPECT_NEAR(w.L2Sensitivity(), std::sqrt(3.0), 1e-12);
}

TEST(MarginalsWorkload, RangeMarginalIncludesWholeMargin) {
  // A 1-way range marginal over a margin of size d has d(d+1)/2 queries,
  // including the full-range (total) query.
  Domain d({4});
  MarginalsWorkload w(d, {AttrSet{0}}, Flavor::kRangeMarginal);
  EXPECT_EQ(w.num_queries(), 10u);
  Vector x{1, 2, 3, 4};
  Vector ans = w.Answer(x);
  // Canonical order: [0,0],[0,1],[0,2],[0,3],[1,1],...
  EXPECT_DOUBLE_EQ(ans[3], 10.0);  // full range
}

TEST(MarginalsWorkload, RejectsDuplicateAttributesInSet) {
  Domain d({2, 2});
  EXPECT_DEATH(MarginalsWorkload(d, {AttrSet{0, 0}}, Flavor::kMarginal),
               "duplicate");
}

TEST(MarginalsWorkload, AnalyticEigenUnavailableForRangeMarginals) {
  Domain d({3, 3});
  MarginalsWorkload w(d, {AttrSet{0}}, Flavor::kRangeMarginal);
  EXPECT_FALSE(w.HasAnalyticEigen());
}

}  // namespace
}  // namespace dpmm
