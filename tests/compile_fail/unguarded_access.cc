// Negative-compile case: touching a DPMM_GUARDED_BY member without holding
// its mutex must not compile under clang's thread-safety analysis. Built
// twice by run_case.cmake: without DPMM_EXPECT_FAIL it must compile, with
// it it must not. Self-skips on compilers without the analysis.
// compile-fail-needs-clang
// compile-fail-flags: -Wthread-safety -Wthread-safety-beta
// compile-fail-expect: requires holding mutex
#include "util/mutex.h"

namespace {

class GuardedCounter {
 public:
  void Increment() {
    dpmm::MutexLock lock(&mu_);
    ++value_;
  }

#ifdef DPMM_EXPECT_FAIL
  // No lock held: -Wthread-safety must reject the write to value_.
  void IncrementUnguarded() { ++value_; }
#endif

  int Read() {
    dpmm::MutexLock lock(&mu_);
    return value_;
  }

 private:
  dpmm::Mutex mu_{dpmm::LockRank::kLeaf};
  int value_ DPMM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  GuardedCounter counter;
  counter.Increment();
  return counter.Read() == 1 ? 0 : 1;
}
