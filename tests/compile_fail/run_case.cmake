# Drives one negative-compile case (ctest label "compile-fail"). Each
# snippet is compiled twice with -fsyntax-only: once without DPMM_EXPECT_FAIL
# (the control — must succeed, proving the snippet is otherwise valid) and
# once with it (must fail, and for the right reason when the snippet pins a
# // compile-fail-expect: regex). Snippet metadata comments:
#   // compile-fail-needs-clang        self-skip unless the compiler is clang
#   // compile-fail-flags: <flags>     extra compile flags (e.g. -Wthread-safety)
#   // compile-fail-expect: <regex>    diagnostic the failing build must emit
#
# Usage:
#   cmake -DCXX=<compiler> -DCXX_ID=<compiler id> -DSNIPPET=<file>
#         -DINCLUDE_DIR=<repo src dir> -P run_case.cmake
#
# A skip prints "compile-fail self-skip", which the ctest property
# SKIP_REGULAR_EXPRESSION turns into a skipped (not passed) test.

foreach(var CXX CXX_ID SNIPPET INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_case.cmake requires -D${var}=...")
  endif()
endforeach()

file(READ "${SNIPPET}" snippet_text)

if(snippet_text MATCHES "// compile-fail-needs-clang")
  if(NOT CXX_ID MATCHES "Clang")
    message("compile-fail self-skip: ${SNIPPET} needs clang's thread-safety "
            "analysis; the configured compiler is ${CXX_ID}")
    return()
  endif()
endif()

set(extra_flags "")
if(snippet_text MATCHES "// compile-fail-flags: ([^\n]*)")
  separate_arguments(extra_flags UNIX_COMMAND "${CMAKE_MATCH_1}")
endif()

set(base_cmd "${CXX}" -std=c++17 -fsyntax-only -Werror
    -I "${INCLUDE_DIR}" ${extra_flags})

# Control build: the snippet without the violation must be valid code —
# otherwise the "expected failure" below would prove nothing.
execute_process(
  COMMAND ${base_cmd} "${SNIPPET}"
  RESULT_VARIABLE control_result
  OUTPUT_VARIABLE control_output
  ERROR_VARIABLE control_output)
if(NOT control_result EQUAL 0)
  message(FATAL_ERROR
          "control variant of ${SNIPPET} failed to compile (the snippet "
          "must be valid without DPMM_EXPECT_FAIL):\n${control_output}")
endif()

# Violation build: must fail.
execute_process(
  COMMAND ${base_cmd} -DDPMM_EXPECT_FAIL "${SNIPPET}"
  RESULT_VARIABLE violation_result
  OUTPUT_VARIABLE violation_output
  ERROR_VARIABLE violation_output)
if(violation_result EQUAL 0)
  message(FATAL_ERROR
          "violation variant of ${SNIPPET} compiled, but the build must "
          "reject it")
endif()

if(snippet_text MATCHES "// compile-fail-expect: ([^\n]*)")
  string(STRIP "${CMAKE_MATCH_1}" expect_re)
  if(NOT violation_output MATCHES "${expect_re}")
    message(FATAL_ERROR
            "violation variant of ${SNIPPET} failed for the wrong reason: "
            "expected the diagnostic to match '${expect_re}', got:\n"
            "${violation_output}")
  endif()
endif()

message("compile-fail ok: ${SNIPPET} rejected as expected")
