// Negative-compile case: dropping a returned Status on the floor must not
// compile (class [[nodiscard]] Status + -Werror). This pins the claim the
// Status-discipline PR verified by hand. Built twice by run_case.cmake:
// without DPMM_EXPECT_FAIL it must compile, with it it must not.
// compile-fail-expect: nodiscard
#include "util/status.h"

namespace {

dpmm::Status Charge() { return dpmm::Status::OK(); }

dpmm::Status UseCharge() {
#ifdef DPMM_EXPECT_FAIL
  Charge();  // dropped [[nodiscard]] value: must be rejected under -Werror
  return dpmm::Status::OK();
#else
  return Charge();
#endif
}

}  // namespace

int main() { return UseCharge().ok() ? 0 : 1; }
