// Negative-compile case: acquiring against a declared DPMM_ACQUIRED_AFTER
// lock-order edge must not compile under -Wthread-safety-beta (the static
// face of the runtime rank checker in util/mutex.h). Built twice by
// run_case.cmake: without DPMM_EXPECT_FAIL it must compile, with it it
// must not. Self-skips on compilers without the analysis.
// compile-fail-needs-clang
// compile-fail-flags: -Wthread-safety -Wthread-safety-beta
// compile-fail-expect: must be acquired before
#include "util/mutex.h"

namespace {

class OrderedPair {
 public:
  OrderedPair()
      : first_(dpmm::LockRank::kThreadPoolRegion),
        second_(dpmm::LockRank::kThreadPool) {}

  void LockInOrder() {
    first_.Lock();
    second_.Lock();
    second_.Unlock();
    first_.Unlock();
  }

#ifdef DPMM_EXPECT_FAIL
  // Violates the declared edge: second_ before first_ is the inversion the
  // runtime checker would abort on — the analysis rejects it statically.
  void LockInverted() {
    second_.Lock();
    first_.Lock();
    first_.Unlock();
    second_.Unlock();
  }
#endif

 private:
  dpmm::Mutex first_;
  dpmm::Mutex second_ DPMM_ACQUIRED_AFTER(first_);
};

}  // namespace

int main() {
  OrderedPair pair;
  pair.LockInOrder();
  return 0;
}
