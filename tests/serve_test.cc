// Tests for the query-serving subsystem: the artifact stores, the budget
// ledger's persistent accounting, and the answer engine's exactness
// contract — served answers bit-identical to Workload answers on the stored
// x_hat, error bars bit-identical to release::QueryErrorProfile, through
// the root-cache hit path, the batch path, and concurrent readers (this
// suite runs under DPMM_THREADS=4 and in the TSan CI pass).
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "optimize/eigen_design.h"
#include "query/predicate.h"
#include "release/release.h"
#include "serve/answer_engine.h"
#include "serve/budget_ledger.h"
#include "serve/store.h"
#include "util/rng.h"
#include "workload/marginal_workloads.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

using serialize::ReleaseArtifact;
using serialize::StrategyArtifact;
using serve::AnswerEngine;
using serve::BudgetLedger;
using serve::ReleaseStore;
using serve::StrategyStore;

/// A fresh store root per test, so release ids and ledger state never leak
/// between tests (or between repeated runs against one TempDir).
std::string FreshRoot() {
  std::string tmpl = ::testing::TempDir() + "/dpmm_serve_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

std::shared_ptr<const StrategyArtifact> DesignArtifact(
    const Workload& w, std::string spec,
    optimize::EngineSelection engine = optimize::EngineSelection::kAuto) {
  optimize::DesignOptions options;
  options.engine = engine;
  auto design = optimize::Design(w, options);
  EXPECT_TRUE(design.ok()) << design.status().ToString();
  auto& d = design.ValueOrDie();
  auto artifact = std::make_shared<StrategyArtifact>();
  artifact->signature = serve::CanonicalSignature(spec, w.domain());
  artifact->domain_sizes = w.domain().sizes();
  artifact->strategy = d.strategy;
  artifact->solver_report = d.solver_report;
  artifact->duality_gap = d.duality_gap;
  artifact->rank = d.rank;
  return artifact;
}

/// One designed strategy + one stored release over deterministic data.
struct Fixture {
  Domain domain{std::vector<std::size_t>{4, 4}};
  PrivacyParams budget{0.5, 1e-4};
  std::shared_ptr<const StrategyArtifact> strategy;
  std::shared_ptr<const ReleaseArtifact> release;
  linalg::Vector data;
};

/// Which (workload, engine) pair the fixture serves. The three variants pin
/// the three root-solve paths of the answer engine: kron-PCG (all-range
/// carries completion rows), kron-diagonal (1-way marginals), and the dense
/// Gram-pseudo-inverse solve.
enum class FixtureKind { kAllRange, kMarginals, kDenseAllRange };

Fixture MakeFixture(FixtureKind kind = FixtureKind::kAllRange) {
  Fixture f;
  std::unique_ptr<Workload> w;
  std::string spec;
  auto engine = optimize::EngineSelection::kAuto;
  if (kind == FixtureKind::kMarginals) {
    w.reset(new MarginalsWorkload(MarginalsWorkload::AllKWay(f.domain, 1)));
    spec = "marginals:1";
  } else {
    w.reset(new AllRangeWorkload(f.domain));
    spec = "allrange";
    if (kind == FixtureKind::kDenseAllRange) {
      engine = optimize::EngineSelection::kDense;
    }
  }
  f.strategy = DesignArtifact(*w, spec, engine);

  f.data.resize(f.domain.NumCells());
  Rng data_rng(99);
  for (auto& v : f.data) v = static_cast<double>(data_rng.UniformInt(50));

  Rng rng(11);
  auto batch =
      release::ReleaseBatch(*f.strategy->strategy, f.data, {f.budget}, &rng);
  auto rel = std::make_shared<ReleaseArtifact>();
  rel->signature = f.strategy->signature;
  rel->domain_sizes = f.domain.sizes();
  rel->budget = f.budget;
  rel->dataset = "unit-test";
  rel->seed = 11;
  rel->batch_index = 0;
  rel->x_hat = batch.x_hats[0];
  f.release = rel;
  return f;
}

AnswerEngine MakeEngine(const Fixture& f) {
  auto engine = AnswerEngine::Create(f.strategy, f.release, f.domain);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

const char* const kPredicates[] = {
    "*",
    "A1 >= 2",
    "A2 IN [1, 2]",
    "A1 = 0 AND A2 <= 1",
    "A1 != 3",
    "A1 IN [1, 2] AND A2 >= 2",
};

std::vector<query::Predicate> ParseAll(const Domain& domain) {
  std::vector<query::Predicate> preds;
  for (const char* text : kPredicates) {
    auto parsed = query::ParsePredicate(text, domain);
    EXPECT_TRUE(parsed.ok()) << text;
    preds.push_back(std::move(parsed).ValueOrDie());
  }
  return preds;
}

// ---- Stores

TEST(StrategyStore, PutGetCachesAndDetectsMismatch) {
  const std::string root = FreshRoot();
  Fixture f = MakeFixture();
  StrategyStore store(root);
  EXPECT_FALSE(store.Contains(f.strategy->signature));
  ASSERT_TRUE(store.Put(*f.strategy).ok());
  EXPECT_TRUE(store.Contains(f.strategy->signature));

  auto got = store.Get(f.strategy->signature);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto again = store.Get(f.strategy->signature);
  ASSERT_TRUE(again.ok());
  // Load-once cache: the same immutable object is shared.
  EXPECT_EQ(got.ValueOrDie().get(), again.ValueOrDie().get());
  EXPECT_EQ(got.ValueOrDie()->duality_gap, f.strategy->duality_gap);

  auto missing = store.Get("allrange@9,9");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // A renamed (or hash-colliding) file is detected, not served.
  const std::string src =
      root + "/strategies/" + serve::StoreKey(f.strategy->signature) +
      ".strategy";
  const std::string dst =
      root + "/strategies/" + serve::StoreKey("allrange@9,9") + ".strategy";
  ASSERT_EQ(std::rename(src.c_str(), dst.c_str()), 0);
  StrategyStore fresh_store(root);
  auto wrong = fresh_store.Get("allrange@9,9");
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.status().message().find("renamed file or key collision"),
            std::string::npos);
}

TEST(ReleaseStore, AssignsMonotonicIdsAndListsThem) {
  const std::string root = FreshRoot();
  Fixture f = MakeFixture();
  ReleaseStore store(root);
  EXPECT_TRUE(store.List(f.release->signature).empty());
  EXPECT_EQ(store.LatestId(f.release->signature).status().code(),
            StatusCode::kNotFound);

  ReleaseArtifact rel = *f.release;
  for (std::size_t b = 0; b < 3; ++b) {
    rel.batch_index = b;
    auto id = store.Put(rel);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(id.ValueOrDie(), b);
  }
  EXPECT_EQ(store.List(f.release->signature),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(store.LatestId(f.release->signature).ValueOrDie(), 2u);

  auto got = store.Get(f.release->signature, 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.ValueOrDie()->batch_index, 1u);
  EXPECT_EQ(got.ValueOrDie()->x_hat, f.release->x_hat);
  EXPECT_EQ(store.Get(f.release->signature, 9).status().code(),
            StatusCode::kNotFound);
}

TEST(StoreKey, IsStableAndFilenameSafe) {
  const std::string key = serve::StoreKey("allrange@8,16,16");
  EXPECT_EQ(key.size(), 16u);
  EXPECT_EQ(key, serve::StoreKey("allrange@8,16,16"));
  EXPECT_NE(key, serve::StoreKey("allrange@8,16,17"));
  Domain d({8, 16, 16});
  EXPECT_EQ(serve::CanonicalSignature("allrange", d), "allrange@8,16,16");
}

// ---- Budget ledger

TEST(BudgetLedger, ChargesAccumulateAndPersist) {
  const std::string root = FreshRoot();
  const PrivacyParams total{1.0, 2e-4};
  {
    BudgetLedger ledger(root);
    auto first = ledger.Charge("census", total, {0.5, 1e-4});
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_EQ(first.ValueOrDie().charges, 1u);
    EXPECT_DOUBLE_EQ(first.ValueOrDie().spent.epsilon, 0.5);
    EXPECT_DOUBLE_EQ(first.ValueOrDie().Remaining().epsilon, 0.5);
  }
  // A separate ledger instance (a new process) sees the same state.
  BudgetLedger ledger(root);
  auto read = ledger.Read("census");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_DOUBLE_EQ(read.ValueOrDie().spent.epsilon, 0.5);
  EXPECT_FALSE(read.ValueOrDie().Overdrawn());

  auto second = ledger.Charge("census", total, {0.5, 1e-4});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.ValueOrDie().charges, 2u);
  EXPECT_DOUBLE_EQ(second.ValueOrDie().Remaining().epsilon, 0.0);
}

TEST(BudgetLedger, RefusesOverBudgetWithoutRecording) {
  const std::string root = FreshRoot();
  BudgetLedger ledger(root);
  const PrivacyParams total{1.0, 1e-4};
  ASSERT_TRUE(ledger.Charge("d", total, {0.75, 5e-5}).ok());

  // Over in epsilon.
  auto refused = ledger.Charge("d", total, {0.5, 1e-6});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // Over in delta only.
  auto refused2 = ledger.Charge("d", total, {0.1, 9e-5});
  ASSERT_FALSE(refused2.ok());
  EXPECT_EQ(refused2.status().code(), StatusCode::kResourceExhausted);

  // The refused charges must not have been recorded.
  auto read = ledger.Read("d");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.ValueOrDie().charges, 1u);
  EXPECT_DOUBLE_EQ(read.ValueOrDie().spent.epsilon, 0.75);

  // A request that still fits goes through.
  EXPECT_TRUE(ledger.Charge("d", total, {0.25, 5e-5}).ok());
}

TEST(BudgetLedger, ExactSplitConsumesTheWholeBudget) {
  // The CLI splits one budget into B equal parts by sequential composition;
  // charging all parts must succeed despite floating accumulation, and the
  // next smallest request must be refused.
  const std::string root = FreshRoot();
  BudgetLedger ledger(root);
  const PrivacyParams total{0.7, 7e-5};
  const auto parts = release::SplitBudget(total, std::vector<double>(8, 1.0));
  for (const auto& part : parts) {
    ASSERT_TRUE(ledger.Charge("d", total, part).ok());
  }
  auto refused = ledger.Charge("d", total, {1e-6, 1e-12});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetLedger, TotalIsNotRenegotiable) {
  const std::string root = FreshRoot();
  BudgetLedger ledger(root);
  ASSERT_TRUE(ledger.Charge("d", {1.0, 1e-4}, {0.1, 1e-5}).ok());
  auto changed = ledger.Charge("d", {2.0, 1e-4}, {0.1, 1e-5});
  ASSERT_FALSE(changed.ok());
  EXPECT_EQ(changed.status().code(), StatusCode::kInvalidArgument);
}

TEST(BudgetLedger, MissingAndMalformedEntriesFailClosed) {
  const std::string root = FreshRoot();
  BudgetLedger ledger(root);
  EXPECT_EQ(ledger.Read("ghost").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(ledger.Charge("d", {1.0, 1e-4}, {0.1, 1e-5}).ok());
  // Damage the snapshot. The ledger must quarantine it (never parse-and-
  // guess, never silently recreate) and fail closed with DataLoss on every
  // operation — a damaged entry must not be mistaken for "never charged".
  const std::string path =
      root + "/ledger/" + serve::StoreKey("d") + ".ledger";
  FILE* file = std::fopen(path.c_str(), "w");
  std::fputs("# dpmm-ledger 1\ndataset d\ntotal nope 1e-4\n", file);
  std::fclose(file);
  EXPECT_EQ(ledger.Read("d").status().code(), StatusCode::kDataLoss);
  // The damaged bytes were preserved under .corrupt-0, not destroyed.
  const std::string quarantined = path + ".corrupt-0";
  FILE* moved = std::fopen(quarantined.c_str(), "r");
  ASSERT_NE(moved, nullptr) << "expected quarantine file " << quarantined;
  std::fclose(moved);
  // Charging is also refused — no fresh entry over the damage.
  auto charge = ledger.Charge("d", {1.0, 1e-4}, {0.1, 1e-5});
  EXPECT_EQ(charge.status().code(), StatusCode::kDataLoss);
  // The WAL holds the dataset's full history (one charge, never
  // compacted), so explicit recovery can rebuild the entry.
  auto recovered = ledger.Recover("d");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.ValueOrDie().charges, 1u);
  EXPECT_DOUBLE_EQ(recovered.ValueOrDie().spent.epsilon, 0.1);
  EXPECT_TRUE(ledger.Charge("d", {1.0, 1e-4}, {0.1, 1e-5}).ok());
}

// ---- Answer engine

TEST(AnswerEngine, RejectsMismatchedArtifacts) {
  Fixture f = MakeFixture();
  auto wrong_release = std::make_shared<ReleaseArtifact>(*f.release);
  wrong_release->signature = "other@4,4";
  EXPECT_FALSE(
      AnswerEngine::Create(f.strategy, wrong_release, f.domain).ok());
  EXPECT_FALSE(
      AnswerEngine::Create(f.strategy, f.release, Domain({2, 8})).ok());
  EXPECT_FALSE(AnswerEngine::Create(nullptr, f.release, f.domain).ok());
}

/// Served answers and error bars must be bit-identical to the library's
/// reference computations: Workload::Answer on the stored x_hat, and
/// release::QueryErrorProfile for the same (workload, strategy, budget) —
/// on every engine and solve path.
void CheckExactness(FixtureKind kind) {
  Fixture f = MakeFixture(kind);
  if (kind == FixtureKind::kDenseAllRange) {
    EXPECT_EQ(f.strategy->engine(), StrategyEngine::kDense);
  } else {
    // The two kron fixtures pin the two implicit normal-solve paths: the
    // all-range design carries completion rows (PCG solve), the 1-way
    // marginals design does not (diagonal solve in the eigenbasis).
    const auto& kron =
        dynamic_cast<const KronStrategy&>(*f.strategy->strategy);
    EXPECT_EQ(kron.has_completion(), kind == FixtureKind::kAllRange);
  }
  AnswerEngine engine = MakeEngine(f);
  const std::vector<query::Predicate> preds = ParseAll(f.domain);

  linalg::Matrix rows(preds.size(), f.domain.NumCells());
  for (std::size_t q = 0; q < preds.size(); ++q) {
    rows.SetRow(q, preds[q].ToRow(f.domain));
  }
  ExplicitWorkload reference(f.domain, rows, "adhoc");
  const linalg::Vector values = reference.Answer(f.release->x_hat);
  const linalg::Vector profile =
      release::QueryErrorProfile(reference, *f.strategy->strategy, f.budget);

  // Scalar path (cold cache).
  for (std::size_t q = 0; q < preds.size(); ++q) {
    const AnswerEngine::Answer a = engine.AnswerPredicate(preds[q]);
    EXPECT_EQ(a.value, values[q]) << kPredicates[q];
    EXPECT_EQ(a.stddev, profile[q]) << kPredicates[q];
  }
  EXPECT_EQ(engine.root_cache_size(), preds.size());
  EXPECT_EQ(engine.root_cache_hits(), 0u);

  // Cache-hit path: identical answers, hits counted.
  for (std::size_t q = 0; q < preds.size(); ++q) {
    const AnswerEngine::Answer a = engine.AnswerPredicate(preds[q]);
    EXPECT_EQ(a.value, values[q]);
    EXPECT_EQ(a.stddev, profile[q]);
  }
  EXPECT_EQ(engine.root_cache_size(), preds.size());
  EXPECT_EQ(engine.root_cache_hits(), preds.size());

  // Batch path on a fresh engine (cold cache, block solve), including a
  // duplicate inside the batch.
  AnswerEngine cold = MakeEngine(f);
  std::vector<query::Predicate> batch = preds;
  batch.push_back(preds[1]);
  const auto answers = cold.AnswerBatch(batch);
  ASSERT_EQ(answers.size(), preds.size() + 1);
  for (std::size_t q = 0; q < preds.size(); ++q) {
    EXPECT_EQ(answers[q].value, values[q]) << kPredicates[q];
    EXPECT_EQ(answers[q].stddev, profile[q]) << kPredicates[q];
  }
  EXPECT_EQ(answers.back().value, values[1]);
  EXPECT_EQ(answers.back().stddev, profile[1]);
  // The duplicate solved once.
  EXPECT_EQ(cold.root_cache_size(), preds.size());

  // Batch path over a warm cache: pure hits, same bits.
  const auto warm = cold.AnswerBatch(batch);
  for (std::size_t q = 0; q < preds.size(); ++q) {
    EXPECT_EQ(warm[q].value, values[q]);
    EXPECT_EQ(warm[q].stddev, profile[q]);
  }
}

// Covers the PCG normal-solve path (the 4x4 all-range design completes 12
// deficient columns).
TEST(AnswerEngine, ExactlyMatchesReferenceAllRange) {
  CheckExactness(FixtureKind::kAllRange);
}

// Covers the diagonal normal-solve path (no completion rows).
TEST(AnswerEngine, ExactlyMatchesReferenceMarginals) {
  CheckExactness(FixtureKind::kMarginals);
}

// Covers the dense engine: same serving loop, same exactness contract,
// roots solved through the cached Gram pseudo-inverse.
TEST(AnswerEngine, ExactlyMatchesReferenceDenseEngine) {
  CheckExactness(FixtureKind::kDenseAllRange);
}

TEST(AnswerEngine, AnswerTextParsesAndAnswers) {
  Fixture f = MakeFixture();
  AnswerEngine engine = MakeEngine(f);
  auto ok = engine.AnswerText("A1 >= 2");
  ASSERT_TRUE(ok.ok());
  auto pred = query::ParsePredicate("A1 >= 2", f.domain);
  EXPECT_EQ(ok.ValueOrDie().value,
            engine.AnswerPredicate(pred.ValueOrDie()).value);
  EXPECT_FALSE(engine.AnswerText("A9 = 1").ok());
  EXPECT_FALSE(engine.AnswerText("A1 @@ 1").ok());
}

TEST(AnswerEngine, SemanticallyEqualPredicatesShareOneRoot) {
  Fixture f = MakeFixture();
  AnswerEngine engine = MakeEngine(f);
  // Same selected buckets, different syntax: one cache entry, one solve.
  auto a = engine.AnswerText("A1 >= 2");
  auto b = engine.AnswerText("A1 IN [2, 3]");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.ValueOrDie().value, b.ValueOrDie().value);
  EXPECT_EQ(a.ValueOrDie().stddev, b.ValueOrDie().stddev);
  EXPECT_EQ(engine.root_cache_size(), 1u);
  EXPECT_EQ(engine.root_cache_hits(), 1u);
}

TEST(AnswerEngine, BatchesLargerThanOneChunkMatchScalarPath) {
  // AnswerBatch processes 32-query chunks (bounded memory); a batch
  // spanning several chunks — with duplicates landing in later chunks —
  // must still be bit-identical to the scalar path.
  Fixture f = MakeFixture();
  std::vector<query::Predicate> batch;
  Rng rng(17);
  for (std::size_t i = 0; i < 70; ++i) {
    std::vector<query::Condition> conjuncts;
    for (std::size_t a = 0; a < f.domain.num_attributes(); ++a) {
      std::size_t lo = rng.UniformInt(f.domain.size(a));
      std::size_t hi = rng.UniformInt(f.domain.size(a));
      if (lo > hi) std::swap(lo, hi);
      query::Condition c;
      c.attr = a;
      c.op = query::Condition::Op::kBetween;
      c.value = lo;
      c.value2 = hi;
      conjuncts.push_back(c);
    }
    batch.emplace_back(std::move(conjuncts));
  }
  AnswerEngine scalar = MakeEngine(f);
  AnswerEngine batched = MakeEngine(f);
  const auto answers = batched.AnswerBatch(batch);
  ASSERT_EQ(answers.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const AnswerEngine::Answer ref = scalar.AnswerPredicate(batch[i]);
    EXPECT_EQ(answers[i].value, ref.value) << i;
    EXPECT_EQ(answers[i].stddev, ref.stddev) << i;
  }
  EXPECT_EQ(batched.root_cache_size(), scalar.root_cache_size());
}

/// Many readers hammer one shared engine — mixed scalar and batch calls,
/// overlapping keys, cold cache — and must agree bitwise with a serial
/// reference. Run under DPMM_THREADS=4 and TSan in CI. The dense variant
/// additionally races the strategy's lazy Gram-pseudo-inverse
/// initialization (call_once) across readers.
void CheckConcurrentReaders(FixtureKind kind) {
  // The serial reference runs on an independently designed (bit-identical,
  // deterministic) fixture so the shared engine's strategy-level lazy
  // caches are still cold when the reader threads start — otherwise the
  // reference loop would warm the dense engine's call_once Gram-pinv and
  // the race this test exists to exercise would never happen.
  Fixture ref = MakeFixture(kind);
  AnswerEngine serial = MakeEngine(ref);
  const std::vector<query::Predicate> preds = ParseAll(ref.domain);
  std::vector<AnswerEngine::Answer> reference;
  for (const auto& p : preds) reference.push_back(serial.AnswerPredicate(p));

  Fixture f = MakeFixture(kind);
  AnswerEngine shared_engine = MakeEngine(f);
  constexpr int kReaders = 4;
  constexpr int kRounds = 8;
  std::vector<std::vector<AnswerEngine::Answer>> got(kReaders);
  {
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        for (int round = 0; round < kRounds; ++round) {
          if ((t + round) % 2 == 0) {
            for (std::size_t q = 0; q < preds.size(); ++q) {
              got[t].push_back(shared_engine.AnswerPredicate(
                  preds[(q + static_cast<std::size_t>(t)) % preds.size()]));
            }
          } else {
            const auto answers = shared_engine.AnswerBatch(preds);
            got[t].insert(got[t].end(), answers.begin(), answers.end());
          }
        }
      });
    }
    for (auto& reader : readers) reader.join();
  }
  for (int t = 0; t < kReaders; ++t) {
    std::size_t i = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t q = 0; q < preds.size(); ++q, ++i) {
        const std::size_t which =
            (t + round) % 2 == 0
                ? (q + static_cast<std::size_t>(t)) % preds.size()
                : q;
        EXPECT_EQ(got[t][i].value, reference[which].value);
        EXPECT_EQ(got[t][i].stddev, reference[which].stddev);
      }
    }
  }
  EXPECT_EQ(shared_engine.root_cache_size(), preds.size());
}

TEST(AnswerEngine, ConcurrentReadersAgreeWithSerialReference) {
  CheckConcurrentReaders(FixtureKind::kMarginals);
}

TEST(AnswerEngine, ConcurrentReadersOnDenseEngineStore) {
  CheckConcurrentReaders(FixtureKind::kDenseAllRange);
}

/// A dense artifact survives the store round-trip and a fresh process
/// (fresh store instance) serves from it — the full dense store-and-serve
/// loop at the library level.
TEST(AnswerEngine, DenseArtifactServesThroughStoreRoundTrip) {
  const std::string root = FreshRoot();
  Fixture f = MakeFixture(FixtureKind::kDenseAllRange);
  {
    StrategyStore sstore(root);
    ASSERT_TRUE(sstore.Put(*f.strategy).ok());
    ReleaseStore rstore(root);
    ASSERT_TRUE(rstore.Put(*f.release).ok());
  }
  StrategyStore sstore(root);
  ReleaseStore rstore(root);
  auto strategy = sstore.Get(f.strategy->signature);
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();
  EXPECT_EQ(strategy.ValueOrDie()->engine(), StrategyEngine::kDense);
  auto release = rstore.Get(f.strategy->signature, 0);
  ASSERT_TRUE(release.ok()) << release.status().ToString();
  auto engine = AnswerEngine::Create(strategy.ValueOrDie(),
                                     release.ValueOrDie(), f.domain);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Loaded-from-disk answers match the in-memory engine bit for bit.
  AnswerEngine direct = MakeEngine(f);
  for (const auto& pred : ParseAll(f.domain)) {
    const AnswerEngine::Answer a = engine.ValueOrDie().AnswerPredicate(pred);
    const AnswerEngine::Answer b = direct.AnswerPredicate(pred);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.stddev, b.stddev);
  }
}

}  // namespace
}  // namespace dpmm
