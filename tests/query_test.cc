// Tests for the predicate parser / compiler and the workload builder.
#include <gtest/gtest.h>

#include "query/predicate.h"
#include "query/workload_builder.h"
#include "workload/builders.h"
#include "workload/marginal_workloads.h"

namespace dpmm {
namespace query {
namespace {

Domain StudentDomain() {
  return Domain({2, 4}, {"gender", "gpa"});
}

TEST(Condition, AllOperators) {
  Condition c;
  c.value = 2;
  c.op = Condition::Op::kEq;
  EXPECT_TRUE(c.Matches(2));
  EXPECT_FALSE(c.Matches(1));
  c.op = Condition::Op::kNe;
  EXPECT_TRUE(c.Matches(3));
  EXPECT_FALSE(c.Matches(2));
  c.op = Condition::Op::kLt;
  EXPECT_TRUE(c.Matches(1));
  EXPECT_FALSE(c.Matches(2));
  c.op = Condition::Op::kLe;
  EXPECT_TRUE(c.Matches(2));
  EXPECT_FALSE(c.Matches(3));
  c.op = Condition::Op::kGt;
  EXPECT_TRUE(c.Matches(3));
  EXPECT_FALSE(c.Matches(2));
  c.op = Condition::Op::kGe;
  EXPECT_TRUE(c.Matches(2));
  EXPECT_FALSE(c.Matches(1));
  c.op = Condition::Op::kBetween;
  c.value = 1;
  c.value2 = 2;
  EXPECT_TRUE(c.Matches(1));
  EXPECT_TRUE(c.Matches(2));
  EXPECT_FALSE(c.Matches(0));
  EXPECT_FALSE(c.Matches(3));
}

TEST(ParsePredicate, StarAndEmptyAreTotal) {
  Domain d = StudentDomain();
  for (const char* text : {"*", "", "   "}) {
    auto p = ParsePredicate(text, d);
    ASSERT_TRUE(p.ok()) << text;
    EXPECT_EQ(p.ValueOrDie().Support(d), 8u);
  }
}

TEST(ParsePredicate, SimpleEquality) {
  Domain d = StudentDomain();
  auto p = ParsePredicate("gender = 0", d).ValueOrDie();
  EXPECT_EQ(p.Support(d), 4u);
  // Cells 0..3 are gender=0 in row-major order.
  linalg::Vector row = p.ToRow(d);
  EXPECT_EQ(row, (linalg::Vector{1, 1, 1, 1, 0, 0, 0, 0}));
}

TEST(ParsePredicate, ConjunctionAndRange) {
  Domain d = StudentDomain();
  auto p = ParsePredicate("gender = 1 AND gpa IN [2, 3]", d).ValueOrDie();
  linalg::Vector row = p.ToRow(d);
  EXPECT_EQ(row, (linalg::Vector{0, 0, 0, 0, 0, 0, 1, 1}));
  // Case-insensitive keywords.
  auto p2 = ParsePredicate("gender = 1 and gpa in [2, 3]", d);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2.ValueOrDie().ToRow(d), row);
}

TEST(ParsePredicate, ComparisonOperators) {
  Domain d = StudentDomain();
  EXPECT_EQ(ParsePredicate("gpa < 2", d).ValueOrDie().Support(d), 4u);
  EXPECT_EQ(ParsePredicate("gpa >= 2", d).ValueOrDie().Support(d), 4u);
  EXPECT_EQ(ParsePredicate("gpa != 0", d).ValueOrDie().Support(d), 6u);
  EXPECT_EQ(ParsePredicate("gpa <= 0 AND gender == 0", d).ValueOrDie().Support(d),
            1u);
}

TEST(ParsePredicate, Errors) {
  Domain d = StudentDomain();
  EXPECT_FALSE(ParsePredicate("height = 1", d).ok());      // unknown attr
  EXPECT_FALSE(ParsePredicate("gpa ~ 1", d).ok());         // bad operator
  EXPECT_FALSE(ParsePredicate("gpa = 9", d).ok());         // out of range
  EXPECT_FALSE(ParsePredicate("gpa = 1 AND", d).ok());     // dangling AND
  EXPECT_FALSE(ParsePredicate("gpa = 1 gender = 0", d).ok());  // missing AND
  EXPECT_FALSE(ParsePredicate("gpa IN [3, 1]", d).ok());   // empty range
  EXPECT_FALSE(ParsePredicate("gpa IN [1 2]", d).ok());    // missing comma
  EXPECT_FALSE(ParsePredicate("gpa = x", d).ok());         // non-integer
  EXPECT_FALSE(ParsePredicate("* AND gpa = 1", d).ok());   // junk after *
}

TEST(ParsePredicate, RoundTripsThroughToString) {
  Domain d = StudentDomain();
  const std::string text = "gender = 1 AND gpa IN [1, 2]";
  auto p = ParsePredicate(text, d).ValueOrDie();
  auto p2 = ParsePredicate(p.ToString(d), d).ValueOrDie();
  EXPECT_EQ(p.ToRow(d), p2.ToRow(d));
}

TEST(WorkloadBuilder, ReconstructsFig1Workload) {
  // The Fig. 1(b) workload expressed as predicate queries.
  Domain d = StudentDomain();
  WorkloadBuilder b(d);
  EXPECT_TRUE(b.AddCount("*").ok());                      // q1 all
  EXPECT_TRUE(b.AddCount("gender = 0").ok());             // q2 male
  EXPECT_TRUE(b.AddCount("gender = 1").ok());             // q3 female
  EXPECT_TRUE(b.AddCount("gpa < 2").ok());                // q4 gpa < 3.0
  EXPECT_TRUE(b.AddCount("gpa >= 2").ok());               // q5 gpa >= 3.0
  EXPECT_TRUE(b.AddCount("gender = 1 AND gpa >= 2").ok());  // q6
  EXPECT_TRUE(b.AddCount("gender = 0 AND gpa < 2").ok());   // q7
  b.AddDifference(ParsePredicate("gender = 0", d).ValueOrDie(),
                  ParsePredicate("gender = 1", d).ValueOrDie());  // q8
  ExplicitWorkload w = b.Build("fig1-by-query");
  EXPECT_EQ(w.num_queries(), 8u);
  EXPECT_LT(w.matrix()->MaxAbsDiff(builders::Fig1Matrix()), 1e-12);
}

TEST(WorkloadBuilder, GroupByEqualsMarginal) {
  Domain d({3, 4, 2});
  WorkloadBuilder b(d);
  b.AddGroupBy({0, 2});
  ExplicitWorkload w = b.Build();
  EXPECT_EQ(w.num_queries(), 6u);
  MarginalsWorkload marginal(d, {AttrSet{0, 2}},
                             MarginalsWorkload::Flavor::kMarginal);
  EXPECT_LT(w.matrix()->MaxAbsDiff(marginal.Materialize()), 1e-12);
}

TEST(WorkloadBuilder, WeightedCountScalesRow) {
  Domain d = StudentDomain();
  WorkloadBuilder b(d);
  b.AddWeightedCount(ParsePredicate("*", d).ValueOrDie(), 3.0);
  ExplicitWorkload w = b.Build();
  EXPECT_EQ((*w.matrix())(0, 0), 3.0);
}

TEST(WorkloadBuilder, DescriptionsAreReadable) {
  Domain d = StudentDomain();
  WorkloadBuilder b(d);
  ASSERT_TRUE(b.AddCount("gender = 0 AND gpa IN [1, 2]").ok());
  EXPECT_EQ(b.description(0), "count(gender = 0 AND gpa IN [1, 2])");
}

}  // namespace
}  // namespace query
}  // namespace dpmm
