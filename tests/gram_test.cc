// Validates every closed-form Gram matrix against brute-force enumeration of
// the corresponding explicit workload.
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "workload/builders.h"
#include "workload/gram.h"

namespace dpmm {
namespace {

using linalg::Gram;
using linalg::Matrix;

class GramSizes : public ::testing::TestWithParam<int> {};

TEST_P(GramSizes, AllRange1DMatchesExplicit) {
  const int d = GetParam();
  Matrix w = builders::AllRangeMatrix1D(d);
  EXPECT_EQ(w.rows(), gram::NumRanges1D(d));
  EXPECT_LT(gram::AllRange1D(d).MaxAbsDiff(Gram(w)), 1e-9);
}

TEST_P(GramSizes, NormalizedAllRange1DMatchesExplicit) {
  const int d = GetParam();
  Matrix w = builders::AllRangeMatrix1D(d);
  // Normalize each row to unit L2 norm.
  for (std::size_t i = 0; i < w.rows(); ++i) {
    double n2 = 0;
    for (int j = 0; j < d; ++j) n2 += w(i, j) * w(i, j);
    const double inv = 1.0 / std::sqrt(n2);
    for (int j = 0; j < d; ++j) w(i, j) *= inv;
  }
  EXPECT_LT(gram::NormalizedAllRange1D(d).MaxAbsDiff(Gram(w)), 1e-9);
}

TEST_P(GramSizes, Prefix1DMatchesExplicit) {
  const int d = GetParam();
  Matrix w = builders::PrefixMatrix1D(d);
  EXPECT_LT(gram::Prefix1D(d).MaxAbsDiff(Gram(w)), 1e-9);
}

TEST_P(GramSizes, NormalizedPrefix1DMatchesExplicit) {
  const int d = GetParam();
  Matrix w = builders::PrefixMatrix1D(d);
  for (std::size_t i = 0; i < w.rows(); ++i) {
    const double inv = 1.0 / std::sqrt(static_cast<double>(i + 1));
    for (int j = 0; j < d; ++j) w(i, j) *= inv;
  }
  EXPECT_LT(gram::NormalizedPrefix1D(d).MaxAbsDiff(Gram(w)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GramSizes, ::testing::Values(1, 2, 3, 5, 8, 16, 31));

TEST(GramClosedForms, AllPredicateMatchesEnumeration) {
  const std::size_t d = 10;
  // Enumerate all 2^10 predicate queries.
  Matrix w(1 << d, d);
  for (std::size_t mask = 0; mask < (1u << d); ++mask) {
    for (std::size_t j = 0; j < d; ++j) {
      if (mask & (1u << j)) w(mask, j) = 1.0;
    }
  }
  EXPECT_LT(gram::AllPredicate(d).MaxAbsDiff(Gram(w)), 1e-9);
}

TEST(GramClosedForms, OnesIsTotalQueryGram) {
  Matrix total = builders::TotalMatrix(6);
  EXPECT_LT(gram::Ones(6).MaxAbsDiff(Gram(total)), 1e-12);
}

TEST(GramClosedForms, AllRangeDiagonalIsCoverageCount) {
  // Cell i of [d] is covered by (i+1)(d-i) ranges.
  const std::size_t d = 12;
  Matrix g = gram::AllRange1D(d);
  for (std::size_t i = 0; i < d; ++i) {
    EXPECT_DOUBLE_EQ(g(i, i), static_cast<double>((i + 1) * (d - i)));
  }
}

TEST(GramClosedForms, NumRanges) {
  EXPECT_EQ(gram::NumRanges1D(1), 1u);
  EXPECT_EQ(gram::NumRanges1D(2048), 2098176u);
}

}  // namespace
}  // namespace dpmm
