// Tests for the workload abstraction: explicit, stacked, permuted, and the
// implicit range/prefix workloads (validated against materialized forms).
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/eigen_sym.h"
#include "linalg/kronecker.h"
#include "util/rng.h"
#include "workload/builders.h"
#include "workload/gram.h"
#include "workload/range_workloads.h"
#include "workload/workload.h"

namespace dpmm {
namespace {

using linalg::Matrix;
using linalg::Vector;

Vector RandomCounts(std::size_t n, Rng* rng) {
  Vector x(n);
  for (auto& v : x) v = std::floor(100.0 * rng->UniformDouble());
  return x;
}

TEST(ExplicitWorkload, GramSensitivityAnswer) {
  auto w = ExplicitWorkload::FromMatrix(builders::Fig1Matrix(), "Fig1");
  EXPECT_EQ(w.num_queries(), 8u);
  EXPECT_EQ(w.num_cells(), 8u);
  // ||W||_2 = sqrt(5) for the Fig. 1 workload (Sec. 2.2).
  EXPECT_NEAR(w.L2Sensitivity(), std::sqrt(5.0), 1e-12);
  Vector x{1, 2, 3, 4, 5, 6, 7, 8};
  Vector ans = w.Answer(x);
  EXPECT_DOUBLE_EQ(ans[0], 36.0);           // all students
  EXPECT_DOUBLE_EQ(ans[1], 10.0);           // first four cells
  EXPECT_DOUBLE_EQ(ans[7], 10.0 - 26.0);    // difference query
  EXPECT_LT(w.Gram().MaxAbsDiff(linalg::Gram(builders::Fig1Matrix())), 1e-12);
}

TEST(ExplicitWorkload, NormalizedMatrixDropsZeroRowsAndUnitNorms) {
  Matrix m = Matrix::FromRows({{3, 4}, {0, 0}, {0, 2}});
  auto w = ExplicitWorkload::FromMatrix(m, "test");
  Matrix nm = w.NormalizedMatrix();
  ASSERT_EQ(nm.rows(), 2u);
  EXPECT_NEAR(nm(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(nm(0, 1), 0.8, 1e-12);
  EXPECT_NEAR(nm(1, 1), 1.0, 1e-12);
}

TEST(StackedWorkload, GramIsSumAndAnswerIsConcat) {
  auto a = std::make_shared<ExplicitWorkload>(
      ExplicitWorkload::FromMatrix(builders::PrefixMatrix1D(6), "prefix"));
  auto b = std::make_shared<ExplicitWorkload>(
      ExplicitWorkload::FromMatrix(builders::TotalMatrix(6), "total"));
  StackedWorkload s({a, b}, "stack");
  EXPECT_EQ(s.num_queries(), 7u);
  Matrix expect = a->Gram();
  Matrix gb = b->Gram();
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) expect(i, j) += gb(i, j);
  }
  EXPECT_LT(s.Gram().MaxAbsDiff(expect), 1e-12);
  Rng rng(1);
  Vector x = RandomCounts(6, &rng);
  Vector ans = s.Answer(x);
  ASSERT_EQ(ans.size(), 7u);
  EXPECT_DOUBLE_EQ(ans[6], linalg::SumVec(x));
}

TEST(PermutedWorkload, MatchesExplicitColumnPermutation) {
  Rng rng(2);
  auto base = std::make_shared<ExplicitWorkload>(
      ExplicitWorkload::FromMatrix(builders::AllRangeMatrix1D(7), "ranges"));
  auto perm = rng.Permutation(7);
  PermutedWorkload pw(base, perm);

  // Explicit permuted matrix: column j = base column perm[j].
  const Matrix& w = *base->matrix();
  Matrix wp(w.rows(), w.cols());
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) wp(i, j) = w(i, perm[j]);
  }
  EXPECT_LT(pw.Gram().MaxAbsDiff(linalg::Gram(wp)), 1e-12);
  EXPECT_NEAR(pw.L2Sensitivity(), base->L2Sensitivity(), 1e-12);

  Vector x = RandomCounts(7, &rng);
  Vector got = pw.Answer(x);
  Vector expect = linalg::MatVec(wp, x);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], expect[i], 1e-10);
  }
}

class RangeDomains : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(RangeDomains, ImplicitMatchesMaterialized) {
  Domain domain(GetParam());
  AllRangeWorkload w(domain);

  // Materialize: kron of per-dim all-range matrices in attribute order.
  std::vector<Matrix> factors;
  for (std::size_t d : domain.sizes()) {
    factors.push_back(builders::AllRangeMatrix1D(d));
  }
  Matrix explicit_w = linalg::KronList(factors);

  EXPECT_EQ(w.num_queries(), explicit_w.rows());
  EXPECT_LT(w.Gram().MaxAbsDiff(linalg::Gram(explicit_w)), 1e-9);
  EXPECT_NEAR(w.L2Sensitivity(), explicit_w.MaxColNorm(), 1e-9);

  Rng rng(3);
  Vector x = RandomCounts(domain.NumCells(), &rng);
  Vector fast = w.Answer(x);
  Vector slow = linalg::MatVec(explicit_w, x);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_NEAR(fast[i], slow[i], 1e-8) << "query " << i;
  }
}

TEST_P(RangeDomains, NormalizedGramMatchesMaterialized) {
  Domain domain(GetParam());
  AllRangeWorkload w(domain);
  std::vector<Matrix> factors;
  for (std::size_t d : domain.sizes()) {
    factors.push_back(builders::AllRangeMatrix1D(d));
  }
  auto explicit_w =
      ExplicitWorkload(domain, linalg::KronList(factors), "explicit");
  EXPECT_LT(w.NormalizedGram().MaxAbsDiff(explicit_w.NormalizedGram()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Domains, RangeDomains,
                         ::testing::Values(std::vector<std::size_t>{6},
                                           std::vector<std::size_t>{8},
                                           std::vector<std::size_t>{4, 5},
                                           std::vector<std::size_t>{3, 2, 4}));

TEST(AllRangeWorkload, FactorizedEigenDiagonalizesGram) {
  for (bool normalized : {false, true}) {
    Domain domain({4, 3, 2});
    AllRangeWorkload w(domain);
    auto eig = w.FactorizedEigen(normalized);
    Matrix g = normalized ? w.NormalizedGram() : w.Gram();
    Matrix av = linalg::MatMul(g, eig.vectors);
    for (std::size_t i = 0; i < g.rows(); ++i) {
      for (std::size_t j = 0; j < g.cols(); ++j) {
        ASSERT_NEAR(av(i, j), eig.vectors(i, j) * eig.values[j], 1e-8);
      }
    }
  }
}

TEST(AllRangeWorkload, FactorizedEigenMatchesNumericSpectrum) {
  Domain domain({6, 5});
  AllRangeWorkload w(domain);
  auto fast = w.FactorizedEigen();
  auto slow = linalg::SymmetricEigen(w.Gram()).ValueOrDie();
  for (std::size_t i = 0; i < fast.values.size(); ++i) {
    ASSERT_NEAR(fast.values[i], slow.values[i], 1e-8);
  }
}

TEST(PrefixWorkload, MatchesMaterialized) {
  const std::size_t d = 9;
  PrefixWorkload w(d);
  Matrix explicit_w = builders::PrefixMatrix1D(d);
  EXPECT_EQ(w.num_queries(), d);
  EXPECT_LT(w.Gram().MaxAbsDiff(linalg::Gram(explicit_w)), 1e-12);
  EXPECT_NEAR(w.L2Sensitivity(), std::sqrt(static_cast<double>(d)), 1e-12);
  Rng rng(4);
  Vector x = RandomCounts(d, &rng);
  Vector fast = w.Answer(x);
  Vector slow = linalg::MatVec(explicit_w, x);
  for (std::size_t i = 0; i < d; ++i) ASSERT_NEAR(fast[i], slow[i], 1e-10);
}

TEST(RandomWorkloads, RangeRowsAreBoxes) {
  Domain domain({6, 5});
  Rng rng(5);
  auto w = builders::RandomRangeWorkload(domain, 50, &rng);
  ASSERT_EQ(w.num_queries(), 50u);
  const Matrix& m = *w.matrix();
  for (std::size_t q = 0; q < m.rows(); ++q) {
    // Each row must be the indicator of an axis-aligned box: the set of
    // selected coordinates per axis must be a contiguous interval and the
    // row must equal the product structure.
    std::vector<std::pair<int, int>> bounds(2, {1000, -1});
    double count = 0;
    for (std::size_t cell = 0; cell < m.cols(); ++cell) {
      if (m(q, cell) == 0.0) continue;
      ASSERT_EQ(m(q, cell), 1.0);
      count += 1;
      auto multi = domain.MultiIndex(cell);
      for (int a = 0; a < 2; ++a) {
        bounds[a].first = std::min(bounds[a].first, static_cast<int>(multi[a]));
        bounds[a].second = std::max(bounds[a].second, static_cast<int>(multi[a]));
      }
    }
    ASSERT_GT(count, 0.0);
    const double expect = (bounds[0].second - bounds[0].first + 1.0) *
                          (bounds[1].second - bounds[1].first + 1.0);
    ASSERT_EQ(count, expect) << "row " << q << " is not a box";
  }
}

TEST(RandomWorkloads, PredicatesAreBinaryAndDiverse) {
  Domain domain({32});
  Rng rng(6);
  auto w = builders::RandomPredicateWorkload(domain, 40, &rng);
  const Matrix& m = *w.matrix();
  double ones = 0;
  for (std::size_t q = 0; q < m.rows(); ++q) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      ASSERT_TRUE(m(q, j) == 0.0 || m(q, j) == 1.0);
      ones += m(q, j);
    }
  }
  const double frac = ones / (40.0 * 32.0);
  EXPECT_NEAR(frac, 0.5, 0.1);
}

TEST(RandomWorkloads, MarginalSetsDistinctAndNonEmpty) {
  Rng rng(7);
  auto sets = builders::RandomMarginalSets(4, 10, &rng);
  ASSERT_EQ(sets.size(), 10u);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    ASSERT_FALSE(sets[i].empty());
    for (std::size_t j = i + 1; j < sets.size(); ++j) {
      ASSERT_NE(sets[i], sets[j]);
    }
  }
}

TEST(Workload, SensitivityDefaultFromGramDiagonal) {
  // AllRange sensitivity closed form equals the Gram-diagonal bound.
  Domain domain({4, 6});
  AllRangeWorkload w(domain);
  const Matrix g = w.Gram();
  double mx = 0;
  for (std::size_t i = 0; i < g.rows(); ++i) mx = std::max(mx, g(i, i));
  EXPECT_NEAR(w.L2Sensitivity(), std::sqrt(mx), 1e-10);
}

}  // namespace
}  // namespace dpmm
