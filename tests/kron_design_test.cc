// Property tests for the Kronecker-structured fast path: the structured
// operators (KronGram / SumKronGram / KronEigenBasis), the factored
// eigendecomposition, and the implicit eigen-design + error + mechanism +
// release pipeline, all checked against the dense path on small multi-
// dimensional workloads (2D/3D all-range, marginals up to 2-way).
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/cholesky.h"
#include "linalg/kron_operator.h"
#include "mechanism/error.h"
#include "mechanism/matrix_mechanism.h"
#include "optimize/eigen_design.h"
#include "release/release.h"
#include "strategy/kron_strategy.h"
#include "util/rng.h"
#include "workload/marginal_workloads.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

using linalg::Matrix;
using linalg::Vector;

Vector RandomVector(std::size_t n, Rng* rng) {
  Vector v(n);
  for (auto& x : v) x = rng->Gaussian();
  return v;
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  EXPECT_EQ(a.size(), b.size());
  double mx = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::fabs(a[i] - b[i]));
  }
  return mx;
}

ErrorOptions TestErrorOptions() {
  ErrorOptions opts;
  opts.privacy = {0.5, 1e-4};
  opts.convention = ErrorConvention::kPerQuery;
  return opts;
}

// ---- Structured operators ----

TEST(KronGram, DenseAndMatVecMatchWorkloadGram) {
  AllRangeWorkload w(Domain({6, 5}));
  auto kron = w.KronGramFactors(false);
  ASSERT_TRUE(kron.has_value());
  const Matrix dense = w.Gram();
  EXPECT_LT(kron->Dense().MaxAbsDiff(dense), 1e-12);
  EXPECT_NEAR(kron->Trace(), dense.Trace(), 1e-9);

  Rng rng(11);
  const Vector x = RandomVector(w.num_cells(), &rng);
  EXPECT_LT(MaxAbsDiff(kron->MatVec(x), linalg::MatVec(dense, x)), 1e-9);
}

TEST(KronGram, NormalizedFactorsMatchNormalizedGram) {
  AllRangeWorkload w(Domain({4, 3, 3}));
  auto kron = w.KronGramFactors(true);
  ASSERT_TRUE(kron.has_value());
  EXPECT_LT(kron->Dense().MaxAbsDiff(w.NormalizedGram()), 1e-12);
}

TEST(SumKronGram, MarginalGramMatchesDense) {
  MarginalsWorkload w =
      MarginalsWorkload::AllKWay(Domain({3, 4, 2}), 2);
  auto sum = w.StructuredGram(false);
  ASSERT_TRUE(sum.has_value());
  const Matrix dense = w.Gram();
  EXPECT_LT(sum->Dense().MaxAbsDiff(dense), 1e-12);

  Rng rng(13);
  const Vector x = RandomVector(w.num_cells(), &rng);
  EXPECT_LT(MaxAbsDiff(sum->MatVec(x), linalg::MatVec(dense, x)), 1e-9);
}

TEST(KronEigenBasis, AppliesMatchDenseAndStayOrthogonal) {
  AllRangeWorkload w(Domain({5, 4}));
  auto eig = w.ImplicitEigen();
  ASSERT_TRUE(eig.has_value());
  const Matrix q = eig->basis.Dense();
  Rng rng(17);
  const Vector x = RandomVector(w.num_cells(), &rng);

  EXPECT_LT(MaxAbsDiff(eig->basis.Apply(x), linalg::MatVec(q, x)), 1e-10);
  EXPECT_LT(MaxAbsDiff(eig->basis.ApplyT(x), linalg::MatTVec(q, x)), 1e-10);
  // Q^T Q = I through the implicit applies.
  EXPECT_LT(MaxAbsDiff(eig->basis.ApplyT(eig->basis.Apply(x)), x), 1e-10);
  // Entry and Column agree with the dense form.
  for (std::size_t j : {std::size_t{0}, std::size_t{7}}) {
    const Vector col = eig->basis.Column(j);
    for (std::size_t i = 0; i < col.size(); ++i) {
      EXPECT_NEAR(col[i], q(i, j), 1e-12);
      EXPECT_NEAR(eig->basis.Entry(i, j), q(i, j), 1e-12);
    }
  }
}

TEST(FactorKronEigen, ReconstructsTheGram) {
  AllRangeWorkload w(Domain({4, 3, 3}));
  auto eig = w.ImplicitEigen();
  ASSERT_TRUE(eig.has_value());
  const Matrix g = w.Gram();
  // G q_j = value_j q_j for every natural-order column.
  for (std::size_t j = 0; j < w.num_cells(); ++j) {
    const Vector qj = eig->basis.Column(j);
    const Vector gq = linalg::MatVec(g, qj);
    for (std::size_t i = 0; i < qj.size(); ++i) {
      EXPECT_NEAR(gq[i], eig->values[j] * qj[i], 1e-8);
    }
  }
}

TEST(MarginalsImplicitEigen, AnalyticHelmertSpectrumIsExact) {
  MarginalsWorkload w = MarginalsWorkload::AllKWay(Domain({3, 4}), 2);
  auto eig = w.ImplicitEigen();
  ASSERT_TRUE(eig.has_value());
  const Matrix g = w.Gram();
  for (std::size_t j = 0; j < w.num_cells(); ++j) {
    const Vector qj = eig->basis.Column(j);
    const Vector gq = linalg::MatVec(g, qj);
    for (std::size_t i = 0; i < qj.size(); ++i) {
      EXPECT_NEAR(gq[i], eig->values[j] * qj[i], 1e-9);
    }
  }
  // The range flavor has no implicit eigendecomposition.
  MarginalsWorkload range_flavor = MarginalsWorkload::AllKWay(
      Domain({3, 4}), 2, MarginalsWorkload::Flavor::kRangeMarginal);
  EXPECT_FALSE(range_flavor.ImplicitEigen().has_value());
}

// ---- Implicit strategy vs dense strategy ----

TEST(KronStrategy, MaterializedFormMatchesImplicitOperations) {
  AllRangeWorkload w(Domain({6, 5}));
  auto design = optimize::EigenDesignKronForWorkload(w);
  ASSERT_TRUE(design.ok());
  const KronStrategy& a = design.ValueOrDie().strategy;
  const Strategy dense = a.Materialize();
  const Matrix& am = dense.matrix();

  Rng rng(23);
  const Vector x = RandomVector(a.num_cells(), &rng);
  const Vector y = RandomVector(a.num_queries(), &rng);

  EXPECT_LT(MaxAbsDiff(a.Apply(x), linalg::MatVec(am, x)), 1e-9);
  EXPECT_LT(MaxAbsDiff(a.ApplyT(y), linalg::MatTVec(am, y)), 1e-9);

  const Matrix gram = dense.Gram();
  EXPECT_LT(MaxAbsDiff(a.NormalMatVec(x), linalg::MatVec(gram, x)), 1e-9);
  const Vector col2 = a.ColumnNormsSquared();
  for (std::size_t j = 0; j < a.num_cells(); ++j) {
    EXPECT_NEAR(col2[j], gram(j, j), 1e-9);
  }
  EXPECT_NEAR(a.L2Sensitivity(), am.MaxColNorm(), 1e-9);
  EXPECT_NEAR(a.L1Sensitivity(), am.MaxColAbsSum(), 1e-9);
}

TEST(KronStrategy, SolveNormalMatchesCholeskyWithCompletion) {
  AllRangeWorkload w(Domain({5, 4}));
  auto design = optimize::EigenDesignKronForWorkload(w);
  ASSERT_TRUE(design.ok());
  const KronStrategy& a = design.ValueOrDie().strategy;
  ASSERT_TRUE(a.has_completion());

  const Matrix gram = a.Materialize().Gram();
  auto chol = linalg::Cholesky::Factor(gram);
  ASSERT_TRUE(chol.ok());
  Rng rng(29);
  const Vector b = RandomVector(a.num_cells(), &rng);
  const Vector z_dense = chol.ValueOrDie().Solve(b);
  const Vector z_kron = a.SolveNormal(b);
  EXPECT_LT(MaxAbsDiff(z_kron, z_dense), 1e-8);
}

TEST(KronStrategy, SolveNormalBatchBitIdenticalOnPcgBranch) {
  // Completion rows present: the block PCG must reproduce each column's
  // sequential solve exactly — same iterates, same stopping decisions —
  // so equality here is bitwise, not approximate.
  AllRangeWorkload w(Domain({5, 4}));
  auto design = optimize::EigenDesignKronForWorkload(w);
  ASSERT_TRUE(design.ok());
  const KronStrategy& a = design.ValueOrDie().strategy;
  ASSERT_TRUE(a.has_completion());

  Rng rng(31);
  std::vector<Vector> bs;
  for (int i = 0; i < 7; ++i) bs.push_back(RandomVector(a.num_cells(), &rng));
  const std::vector<Vector> batched = a.SolveNormalBatch(bs);
  ASSERT_EQ(batched.size(), bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    EXPECT_EQ(batched[i], a.SolveNormal(bs[i])) << "rhs " << i;
  }
}

TEST(KronStrategy, SolveNormalBatchCompactionSurvivesUnevenRhs) {
  // Deliberately uneven per-column work: a zero rhs retires at iteration 0,
  // a normal-matvec image converges quickly, random columns (at wildly
  // different scales) grind, and a tight tolerance forces stagnation-path
  // retirements at different iterations. Columns therefore retire — and the
  // interleaved block compacts — at staggered times; per-column results
  // must still be *bitwise* equal to the sequential solves, proving the
  // retirement compaction never touches surviving columns' arithmetic.
  AllRangeWorkload w(Domain({5, 4}));
  auto design = optimize::EigenDesignKronForWorkload(w);
  ASSERT_TRUE(design.ok());
  const KronStrategy& a = design.ValueOrDie().strategy;
  ASSERT_TRUE(a.has_completion());

  Rng rng(43);
  std::vector<Vector> bs;
  bs.push_back(Vector(a.num_cells(), 0.0));  // retires immediately
  bs.push_back(a.NormalMatVec(RandomVector(a.num_cells(), &rng)));
  bs.push_back(RandomVector(a.num_cells(), &rng));
  Vector huge = RandomVector(a.num_cells(), &rng);
  for (auto& v : huge) v *= 1e8;
  bs.push_back(huge);
  Vector tiny = RandomVector(a.num_cells(), &rng);
  for (auto& v : tiny) v *= 1e-9;
  bs.push_back(tiny);

  for (double rel_tol : {1e-12, 1e-14}) {
    const std::vector<Vector> batched = a.SolveNormalBatch(bs, rel_tol);
    ASSERT_EQ(batched.size(), bs.size());
    for (std::size_t i = 0; i < bs.size(); ++i) {
      EXPECT_EQ(batched[i], a.SolveNormal(bs[i], rel_tol))
          << "rhs " << i << " rel_tol " << rel_tol;
    }
  }
}

TEST(KronStrategy, SolveNormalBatchBitIdenticalOnDiagonalBranch) {
  // No completion rows: the solve is diagonal in the eigenbasis; the
  // batched passes must still match bitwise.
  AllRangeWorkload w(Domain({4, 3, 3}));
  optimize::EigenDesignOptions options;
  options.complete_columns = false;
  auto design = optimize::EigenDesignKronForWorkload(w, options);
  ASSERT_TRUE(design.ok());
  const KronStrategy& a = design.ValueOrDie().strategy;
  ASSERT_FALSE(a.has_completion());

  Rng rng(37);
  std::vector<Vector> bs;
  for (int i = 0; i < 4; ++i) bs.push_back(RandomVector(a.num_cells(), &rng));
  const std::vector<Vector> batched = a.SolveNormalBatch(bs);
  for (std::size_t i = 0; i < bs.size(); ++i) {
    EXPECT_EQ(batched[i], a.SolveNormal(bs[i])) << "rhs " << i;
  }
}

TEST(KronStrategy, ApplyTBatchBitIdenticalToApplyT) {
  AllRangeWorkload w(Domain({5, 4}));
  auto design = optimize::EigenDesignKronForWorkload(w);
  ASSERT_TRUE(design.ok());
  const KronStrategy& a = design.ValueOrDie().strategy;

  Rng rng(41);
  std::vector<Vector> ys;
  for (int i = 0; i < 5; ++i) ys.push_back(RandomVector(a.num_queries(), &rng));
  const std::vector<Vector> batched = a.ApplyTBatch(ys);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    EXPECT_EQ(batched[i], a.ApplyT(ys[i])) << "vector " << i;
  }
}

// The Kronecker product of the 1D spectra has repeated eigenvalues, and a
// dense numeric eigensolve is free to pick a different (equally valid)
// orthogonal basis inside each degenerate eigenspace than the factored
// decomposition — giving a slightly different, equally legitimate Program-2
// instance. The meaningful equivalence is therefore: feed both the dense
// and the implicit pipeline the *same* eigendecomposition and require the
// optimizer outputs to agree to within the (tightened) duality-gap budget,
// while everything downstream of a fixed strategy agrees to 1e-8.
optimize::EigenDesignOptions TightOptions() {
  optimize::EigenDesignOptions options;
  options.solver.relative_gap_tol = 1e-9;
  options.solver.max_iterations = 50000;
  return options;
}

linalg::SymmetricEigenResult DenseFromKron(const linalg::KronEigenResult& k) {
  return {k.values, k.basis.Dense()};
}

TEST(EigenDesignKron, AgreesWithDensePathOn2DAllRange) {
  AllRangeWorkload w(Domain({8, 8}));
  const optimize::EigenDesignOptions options = TightOptions();
  const auto keig = *w.ImplicitEigen();

  auto dense = optimize::EigenDesignFromEigen(DenseFromKron(keig), options);
  auto kron = optimize::EigenDesignFromKronEigen(keig, options);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(kron.ok());
  const auto& d = dense.ValueOrDie();
  const auto& k = kron.ValueOrDie();

  EXPECT_EQ(d.rank, k.rank);
  EXPECT_NEAR(d.predicted_objective, k.predicted_objective,
              1e-6 * d.predicted_objective);

  const ErrorOptions opts = TestErrorOptions();
  const double err_dense = StrategyError(w, d.strategy, opts);
  // Implicit error via the shared-eigenbasis trace (CG branch: the design
  // carries completion rows).
  const double err_kron =
      StrategyError(k.eigenvalues, w.num_queries(), k.strategy, opts);
  EXPECT_NEAR(err_dense, err_kron, 1e-6 * err_dense);

  // Downstream of the fixed strategy the two error formulas must agree to
  // 1e-8: the materialized implicit strategy under the dense Prop. 4 trace
  // versus the shared-eigenbasis trace.
  const double err_via_dense =
      StrategyError(w.Gram(), w.num_queries(), k.strategy.Materialize(), opts);
  EXPECT_NEAR(err_kron, err_via_dense, 1e-8 * err_kron);
}

TEST(EigenDesignKron, AgreesWithDensePathOn3DAllRangeNoCompletion) {
  AllRangeWorkload w(Domain({4, 3, 3}));
  optimize::EigenDesignOptions options = TightOptions();
  options.complete_columns = false;
  const auto keig = *w.ImplicitEigen();

  auto dense = optimize::EigenDesignFromEigen(DenseFromKron(keig), options);
  auto kron = optimize::EigenDesignFromKronEigen(keig, options);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(kron.ok());
  const auto& d = dense.ValueOrDie();
  const auto& k = kron.ValueOrDie();
  EXPECT_FALSE(k.strategy.has_completion());

  const ErrorOptions opts = TestErrorOptions();
  const double err_dense = StrategyError(w, d.strategy, opts);
  const double err_kron =
      StrategyError(k.eigenvalues, w.num_queries(), k.strategy, opts);
  EXPECT_NEAR(err_dense, err_kron, 1e-6 * err_dense);

  // Same fixed strategy, both trace formulas: 1e-8.
  const double err_via_dense =
      StrategyError(w.Gram(), w.num_queries(), k.strategy.Materialize(), opts);
  EXPECT_NEAR(err_kron, err_via_dense, 1e-8 * err_kron);
}

TEST(EigenDesignKron, AgreesWithAnalyticEigenPathOnMarginals) {
  // The 2-way marginal Gram is rank deficient (cells with every Helmert
  // index nonzero have eigenvalue 0), which exercises the truncated path.
  MarginalsWorkload w = MarginalsWorkload::AllKWay(Domain({3, 4, 2}), 2);
  optimize::EigenDesignOptions options = TightOptions();
  options.complete_columns = false;
  const auto keig = *w.ImplicitEigen();

  auto dense = optimize::EigenDesignFromEigen(DenseFromKron(keig), options);
  auto kron = optimize::EigenDesignFromKronEigen(keig, options);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(kron.ok());
  const auto& d = dense.ValueOrDie();
  const auto& k = kron.ValueOrDie();

  EXPECT_EQ(d.rank, k.rank);
  EXPECT_LT(d.rank, w.num_cells());
  EXPECT_NEAR(d.predicted_objective, k.predicted_objective,
              1e-6 * d.predicted_objective);

  const ErrorOptions opts = TestErrorOptions();
  const double err_kron =
      StrategyError(k.eigenvalues, w.num_queries(), k.strategy, opts);

  // Exact dense reference: the dense design's kept spectrum and weights
  // under the shared trace formula sum g_i / u_i (no regularization). The
  // two solver runs agree to within the tightened duality-gap budget.
  double tr_dense = 0;
  for (std::size_t i = 0; i < d.kept.size(); ++i) {
    const double u = d.weights[i] * d.weights[i];
    tr_dense += d.eigenvalues[d.kept[i]] / u;
  }
  const double err_dense = ErrorFromTrace(d.strategy.L2Sensitivity(),
                                          tr_dense, w.num_queries(), opts);
  EXPECT_NEAR(err_dense, err_kron, 1e-6 * err_dense);

  // The generic dense TraceTerm once regularized its Cholesky with an
  // absolute ~2e-12 jitter, an O(jitter / u_min) accuracy floor (~1e-5
  // relative here, with solver weights spanning ~6 orders of magnitude).
  // The equilibrated jitter-free factorization (spectral pseudo-inverse on
  // the PSD-only path) removed that floor, so the dense reference now
  // agrees with the exact implicit trace to rounding.
  const double err_via_dense =
      StrategyError(w.Gram(), w.num_queries(), k.strategy.Materialize(), opts);
  EXPECT_NEAR(err_kron, err_via_dense, 1e-8 * err_kron);
}

// ---- Implicit mechanism and release ----

TEST(KronMatrixMechanism, InferenceMatchesDenseMechanism) {
  AllRangeWorkload w(Domain({6, 5}));
  auto design = optimize::EigenDesignKronForWorkload(w);
  ASSERT_TRUE(design.ok());
  const KronStrategy& a = design.ValueOrDie().strategy;
  const PrivacyParams privacy{0.5, 1e-4};

  auto kron_mech = KronMatrixMechanism::Prepare(a, privacy);
  auto dense_mech = MatrixMechanism::Prepare(a.Materialize(), privacy);
  ASSERT_TRUE(kron_mech.ok());
  ASSERT_TRUE(dense_mech.ok());
  EXPECT_NEAR(kron_mech.ValueOrDie().noise_scale(),
              dense_mech.ValueOrDie().noise_scale(), 1e-9);

  Vector x(w.num_cells());
  Rng data_rng(31);
  for (auto& v : x) v = 100.0 * data_rng.UniformDouble();

  // Same seed => identical noise draws (row order matches by construction),
  // so the two least-squares estimates must coincide.
  Rng rng_a(77), rng_b(77);
  const Vector xhat_kron = kron_mech.ValueOrDie().InferX(x, &rng_a);
  const Vector xhat_dense = dense_mech.ValueOrDie().InferX(x, &rng_b);
  EXPECT_LT(MaxAbsDiff(xhat_kron, xhat_dense), 1e-8);

  // Run() answers the workload at the shared estimate.
  Rng rng_c(77);
  const Vector answers = kron_mech.ValueOrDie().Run(w, x, &rng_c);
  EXPECT_EQ(answers.size(), w.num_queries());
}

TEST(KronMatrixMechanism, NearNoiselessInferenceRecoversData) {
  AllRangeWorkload w(Domain({4, 4}));
  auto design = optimize::EigenDesignKronForWorkload(w);
  ASSERT_TRUE(design.ok());
  // Essentially no privacy => essentially no noise => x_hat ~= x.
  auto mech =
      KronMatrixMechanism::Prepare(design.ValueOrDie().strategy, {1e9, 0.5});
  ASSERT_TRUE(mech.ok());
  Vector x(w.num_cells());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i % 7);
  Rng rng(5);
  const Vector xhat = mech.ValueOrDie().InferX(x, &rng);
  EXPECT_LT(MaxAbsDiff(xhat, x), 1e-5);
}

TEST(KronMatrixMechanism, BatchedReleasesBitIdenticalToSequential) {
  // The batched engine's contract: with a shared seed, release b of a batch
  // equals the b-th sequential InferX call bitwise (identical noise draws,
  // identical block-solve iterates), and both paths leave the rng in the
  // same state.
  AllRangeWorkload w(Domain({6, 5}));
  auto design = optimize::EigenDesignKronForWorkload(w);
  ASSERT_TRUE(design.ok());
  auto mech =
      KronMatrixMechanism::Prepare(design.ValueOrDie().strategy, {0.5, 1e-4});
  ASSERT_TRUE(mech.ok());
  const KronMatrixMechanism& m = mech.ValueOrDie();
  ASSERT_TRUE(m.strategy().has_completion());  // exercise the PCG branch

  Vector x(w.num_cells());
  Rng data_rng(19);
  for (auto& v : x) v = static_cast<double>(data_rng.UniformInt(50));

  constexpr std::size_t kBatch = 6;
  Rng seq_rng(1234), batch_rng(1234);
  std::vector<Vector> sequential;
  for (std::size_t b = 0; b < kBatch; ++b) {
    sequential.push_back(m.InferX(x, &seq_rng));
  }
  const std::vector<Vector> batched = m.InferXBatch(x, kBatch, &batch_rng);
  ASSERT_EQ(batched.size(), kBatch);
  for (std::size_t b = 0; b < kBatch; ++b) {
    EXPECT_EQ(batched[b], sequential[b]) << "release " << b;
  }
  EXPECT_EQ(seq_rng.NextU64(), batch_rng.NextU64());

  // ReleaseBatch answers the workload at each estimate.
  Rng run_rng(1234);
  const std::vector<Vector> answers = m.ReleaseBatch(w, x, kBatch, &run_rng);
  ASSERT_EQ(answers.size(), kBatch);
  for (const auto& a : answers) EXPECT_EQ(a.size(), w.num_queries());
  EXPECT_EQ(answers[0], w.Answer(sequential[0]));
}

TEST(Release, QueryErrorProfileMatchesDenseProfile) {
  AllRangeWorkload ranges(Domain({4, 3}));
  auto design = optimize::EigenDesignKronForWorkload(ranges);
  ASSERT_TRUE(design.ok());
  const KronStrategy& a = design.ValueOrDie().strategy;

  // A small explicit probe workload over the same cells.
  const std::size_t n = ranges.num_cells();
  Matrix probe(3, n);
  for (std::size_t j = 0; j < n; ++j) probe(0, j) = 1.0;  // total
  probe(1, 0) = 1.0;                                      // single cell
  for (std::size_t j = 0; j < n / 2; ++j) probe(2, j) = 1.0;  // half range
  ExplicitWorkload w(ranges.domain(), probe, "probe");

  const PrivacyParams privacy{0.5, 1e-4};
  const Vector implicit = release::QueryErrorProfile(w, a, privacy);
  const Vector dense = release::QueryErrorProfile(w, a.Materialize(), privacy);
  ASSERT_EQ(implicit.size(), dense.size());
  for (std::size_t q = 0; q < implicit.size(); ++q) {
    EXPECT_NEAR(implicit[q], dense[q], 1e-8 * std::max(1.0, dense[q]));
  }
}

}  // namespace
}  // namespace dpmm
