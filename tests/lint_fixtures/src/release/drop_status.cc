// Fixture: drops an error result on the floor instead of using
// DPMM_IGNORE_STATUS.
namespace dpmm {

struct Status {
  bool ok() const { return true; }
};

Status DoCleanup() { return Status(); }

void Shutdown() {
  (void)DoCleanup();  // void-status finding: dropped Status
}

}  // namespace dpmm
