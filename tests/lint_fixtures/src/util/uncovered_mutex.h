// Fixture: a dpmm::Mutex member in a file no TSan-covered test names —
// the mutex-tsan finding. Annotated and uniquely ranked on purpose, so
// guarded-by and lock-order stay quiet (one rule per twin).
#ifndef FIXTURE_UNCOVERED_MUTEX_H_
#define FIXTURE_UNCOVERED_MUTEX_H_

#include "util/mutex.h"

namespace dpmm {

class UncoveredCache {
 private:
  Mutex mu_{LockRank::kStrategyStoreCache};  // mutex-tsan finding
  int value_ DPMM_GUARDED_BY(mu_) = 0;
};

}  // namespace dpmm

#endif  // FIXTURE_UNCOVERED_MUTEX_H_
