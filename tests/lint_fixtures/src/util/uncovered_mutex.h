// Fixture: a mutex member in a file no TSan-covered test names.
#ifndef FIXTURE_UNCOVERED_MUTEX_H_
#define FIXTURE_UNCOVERED_MUTEX_H_

#include <mutex>

namespace dpmm {

class UncoveredCache {
 private:
  std::mutex mu_;  // mutex-tsan finding
};

}  // namespace dpmm

#endif  // FIXTURE_UNCOVERED_MUTEX_H_
