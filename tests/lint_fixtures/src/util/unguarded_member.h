// Fixture: dpmm::Mutex members with no DPMM_GUARDED_BY anywhere in the
// file — the guarded-by rule flags each member (one active, one carrying a
// lint:allow justification). Named by tests/cover_test.cc so mutex-tsan
// stays quiet; distinct named ranks keep lock-order quiet.
#ifndef FIXTURE_UNGUARDED_MEMBER_H_
#define FIXTURE_UNGUARDED_MEMBER_H_

#include "util/mutex.h"

namespace dpmm {

class UnguardedCache {
 private:
  Mutex mu_{LockRank::kMetricsRegistry};  // guarded-by finding
  // lint:allow(guarded-by): fixture twin — justified unannotated mutex
  Mutex aux_mu_{LockRank::kTraceRecorder};
  int value_ = 0;
};

}  // namespace dpmm

#endif  // FIXTURE_UNGUARDED_MEMBER_H_
