// Fixture: a dpmm::Mutex member whose file IS named by a TSAN_TESTS source
// (tests/cover_test.cc includes this header), annotates its guarded state,
// and declares a unique named rank — clean under mutex-tsan, guarded-by,
// and lock-order alike.
#ifndef FIXTURE_COVERED_MUTEX_H_
#define FIXTURE_COVERED_MUTEX_H_

#include "util/mutex.h"

namespace dpmm {

class CoveredCache {
 private:
  Mutex mu_{LockRank::kLeaf};
  int value_ DPMM_GUARDED_BY(mu_) = 0;
};

}  // namespace dpmm

#endif  // FIXTURE_COVERED_MUTEX_H_
