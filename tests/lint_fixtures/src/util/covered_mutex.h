// Fixture: a mutex member whose file IS named by a TSAN_TESTS source
// (tests/cover_test.cc includes this header) — no finding.
#ifndef FIXTURE_COVERED_MUTEX_H_
#define FIXTURE_COVERED_MUTEX_H_

#include <mutex>

namespace dpmm {

class CoveredCache {
 private:
  std::mutex mu_;
};

}  // namespace dpmm

#endif  // FIXTURE_COVERED_MUTEX_H_
