// Fixture: dpmm::Mutex members sharing one LockRank — the lock-order rule
// flags the duplicate (and honors a lint:allow on a third). Named by
// tests/cover_test.cc so mutex-tsan stays quiet; DPMM_GUARDED_BY present
// so guarded-by stays quiet.
#ifndef FIXTURE_DOUBLE_RANK_H_
#define FIXTURE_DOUBLE_RANK_H_

#include "util/mutex.h"

namespace dpmm {

class DoubleRank {
 private:
  Mutex first_mu_{LockRank::kThreadPool};
  Mutex second_mu_{LockRank::kThreadPool};  // lock-order finding
  // lint:allow(lock-order): fixture twin — justified duplicate rank
  Mutex third_mu_{LockRank::kThreadPool};
  int value_ DPMM_GUARDED_BY(first_mu_) = 0;
};

}  // namespace dpmm

#endif  // FIXTURE_DOUBLE_RANK_H_
