// Fixture: draws nondeterministic noise outside util/rng.
#include <random>

namespace dpmm {

double DeviceNoise() {
  std::random_device rd;  // unseeded-rng finding
  return static_cast<double>(rd());
}

}  // namespace dpmm
