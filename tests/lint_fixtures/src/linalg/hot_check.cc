// Fixture: an always-on check in a linalg kernel, plus a justified keep.
#include "util/logging.h"

namespace dpmm {

double HotKernel(const double* x, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    DPMM_CHECK(x != nullptr);  // dcheck-hot-path finding
    acc += x[i];
  }
  return acc;
}

double BoundaryKernel(const double* x, int n) {
  // lint:allow(dcheck-hot-path): fixture for a justified API-boundary check
  DPMM_CHECK(n >= 0);
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += x[i];
  return acc;
}

}  // namespace dpmm
