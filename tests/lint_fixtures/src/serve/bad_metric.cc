// Fixture: registers metrics that break the dpmm.<subsystem>.<name> scheme,
// once actively and once with a justification.
#include <string>

namespace dpmm {

struct FakeCounter {
  void Add(int) {}
};

struct FakeRegistry {
  static FakeRegistry& Global();
  FakeCounter* GetCounter(const std::string&);
};

void CountServedQueries() {
  FakeRegistry& reg = FakeRegistry::Global();
  FakeCounter* bad = reg.GetCounter("served-queries");  // metric-name finding
  bad->Add(1);
  // lint:allow(metric-name): fixture exercises the suppression path
  FakeCounter* justified = reg.GetCounter("legacy.count");
  justified->Add(1);
  FakeCounter* good = reg.GetCounter("dpmm.serve.fixture.queries");
  good->Add(1);
}

}  // namespace dpmm
