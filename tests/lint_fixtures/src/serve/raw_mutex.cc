// Fixture: locking through the raw std:: primitives instead of the
// dpmm::Mutex wrapper — the raw-mutex rule must flag the bare lock and
// honor a justified lint:allow on its twin.
#include <mutex>

#include "serve/lock_registry.h"  // fixture-only: declares RegistryMu()

namespace dpmm {
namespace serve {

int g_raw_touches = 0;

void TouchUnderRawLock() {
  std::lock_guard<std::mutex> lock(RegistryMu());  // raw-mutex finding
  ++g_raw_touches;
}

void JustifiedTouchUnderRawLock() {
  // lint:allow(raw-mutex): fixture twin — proves a justified raw lock is
  // reported but does not fail the run
  std::unique_lock<std::mutex> lock(RegistryMu());
  ++g_raw_touches;
}

}  // namespace serve
}  // namespace dpmm
