// Fixture: reads the wall clock outside src/util/, once actively and once
// with a justification.
#include <chrono>
#include <cstdint>

namespace dpmm {

std::int64_t StampNow() {
  const auto now = std::chrono::system_clock::now();  // wall-clock finding
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

std::int64_t StampForHumans() {
  // lint:allow(wall-clock): fixture exercises the suppression path
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::seconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace dpmm
