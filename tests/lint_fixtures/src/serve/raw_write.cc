// Fixture: writes through a raw stream instead of the fs_ops seam.
#include <fstream>
#include <string>

namespace dpmm {
namespace serve {

void RawWrite(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);  // raw-fs-call finding
  out << bytes;
}

}  // namespace serve
}  // namespace dpmm
