// Fixture: the same violation carrying a justification — reported as
// suppressed, does not fail the run.
#include <fcntl.h>

namespace dpmm {
namespace serve {

int OpenRaw(const char* path) {
  // lint:allow(raw-fs-call): fixture demonstrating the suppression syntax
  return ::open(path, O_RDONLY);
}

}  // namespace serve
}  // namespace dpmm
