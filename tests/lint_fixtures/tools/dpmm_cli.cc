// Fixture: returns an exit code the fixture README does not document.
int main(int argc, char** argv) {
  if (argc > 1) return 9;  // undocumented -> cli-exit-doc finding
  if (argv == nullptr) return 2;  // "usage errors exit 2" is documented
  return 0;
}
