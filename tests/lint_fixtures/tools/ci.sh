#!/usr/bin/env bash
# Fixture ci.sh: only the TSAN_TESTS list matters — the mutex-tsan rule
# parses it to learn which test sources count as TSan-covered.
TSAN_TESTS=(cover_test)
