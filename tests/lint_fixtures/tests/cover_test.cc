// Fixture TSan-covered test: names util/covered_mutex.h, so that file's
// mutex member passes the mutex-tsan rule; uncovered_mutex.h is named
// nowhere and must be flagged.
#include "util/covered_mutex.h"

int main() { return 0; }
