// Fixture TSan-covered test: names util/covered_mutex.h (plus the
// guarded-by and lock-order twins, so each of those files trips exactly
// one rule); uncovered_mutex.h is named nowhere and must be flagged by
// mutex-tsan.
#include "util/covered_mutex.h"
#include "util/double_rank.h"
#include "util/unguarded_member.h"

int main() { return 0; }
