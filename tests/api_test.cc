// The unified strategy/mechanism API (ctest label `api`): the
// LinearStrategy interface, the Design() engine decision rule, the
// polymorphic Mechanism, and the v2 artifact format's dense payload kind.
// The load-bearing contracts:
//   * fixed-seed releases through the unified Design()/Mechanism path are
//     byte-identical to the legacy per-engine paths (EigenDesignForWorkload
//     + MatrixMechanism, EigenDesignKronForWorkload + KronMatrixMechanism);
//   * dense strategy artifacts are save -> load -> save byte-stable and
//     reject corruption/truncation at every prefix length (mirroring the
//     kron suite);
//   * v1 (kron-only) artifacts still decode;
//   * strategy_io files ride the dense artifact kind, with the legacy text
//     format still readable.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/svd.h"
#include "mechanism/matrix_mechanism.h"
#include "optimize/eigen_design.h"
#include "release/release.h"
#include "serialize/artifact.h"
#include "strategy/io.h"
#include "util/rng.h"
#include "workload/builders.h"
#include "workload/marginal_workloads.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

using linalg::Vector;
using optimize::Design;
using optimize::DesignOptions;
using optimize::EngineSelection;
using serialize::DecodeStrategyArtifact;
using serialize::EncodeStrategyArtifact;
using serialize::StrategyArtifact;

ExplicitWorkload Fig1Workload() {
  return ExplicitWorkload(Domain({2, 4}), builders::Fig1Matrix(), "Fig1");
}

Vector RandomData(std::size_t n, std::uint64_t seed) {
  Vector x(n);
  Rng rng(seed);
  for (auto& v : x) v = static_cast<double>(rng.UniformInt(100));
  return x;
}

// ---- Engine decision rule

TEST(Design, AutoPicksKronForStructuredWorkloads) {
  AllRangeWorkload w(Domain({4, 4}));
  auto design = Design(w);
  ASSERT_TRUE(design.ok()) << design.status().ToString();
  EXPECT_EQ(design.ValueOrDie().engine, StrategyEngine::kKron);
  EXPECT_EQ(design.ValueOrDie().strategy->engine(), StrategyEngine::kKron);
}

TEST(Design, AutoFallsBackToDenseForExplicitWorkloads) {
  ExplicitWorkload w = Fig1Workload();
  auto design = Design(w);
  ASSERT_TRUE(design.ok()) << design.status().ToString();
  EXPECT_EQ(design.ValueOrDie().engine, StrategyEngine::kDense);
  EXPECT_EQ(design.ValueOrDie().strategy->engine(), StrategyEngine::kDense);
}

TEST(Design, EngineOverridesAreHonoredAndValidated) {
  AllRangeWorkload structured(Domain({4, 4}));
  DesignOptions dense_options;
  dense_options.engine = EngineSelection::kDense;
  auto forced_dense = Design(structured, dense_options);
  ASSERT_TRUE(forced_dense.ok());
  EXPECT_EQ(forced_dense.ValueOrDie().engine, StrategyEngine::kDense);

  ExplicitWorkload unstructured = Fig1Workload();
  DesignOptions kron_options;
  kron_options.engine = EngineSelection::kKron;
  auto impossible = Design(unstructured, kron_options);
  ASSERT_FALSE(impossible.ok());
  EXPECT_EQ(impossible.status().code(), StatusCode::kInvalidArgument);
}

TEST(Design, ParseEngineSelectionIsStrict) {
  EXPECT_EQ(optimize::ParseEngineSelection("auto"), EngineSelection::kAuto);
  EXPECT_EQ(optimize::ParseEngineSelection("dense"), EngineSelection::kDense);
  EXPECT_EQ(optimize::ParseEngineSelection("kron"), EngineSelection::kKron);
  EXPECT_FALSE(optimize::ParseEngineSelection("Kron").has_value());
  EXPECT_FALSE(optimize::ParseEngineSelection("").has_value());
  EXPECT_FALSE(optimize::ParseEngineSelection("implicit").has_value());
}

// ---- Bit-identity of the unified path vs the legacy per-engine paths

TEST(Mechanism, DenseReleaseByteIdenticalToLegacyDensePath) {
  ExplicitWorkload w = Fig1Workload();
  const PrivacyParams budget{0.5, 1e-4};
  const Vector x = RandomData(w.num_cells(), 99);

  auto legacy_design = optimize::EigenDesignForWorkload(w);
  ASSERT_TRUE(legacy_design.ok());
  auto legacy_mech =
      MatrixMechanism::Prepare(legacy_design.ValueOrDie().strategy, budget);
  ASSERT_TRUE(legacy_mech.ok());

  auto design = Design(w);
  ASSERT_TRUE(design.ok());
  auto mech = Mechanism::Prepare(design.ValueOrDie().strategy, budget);
  ASSERT_TRUE(mech.ok());
  EXPECT_EQ(mech.ValueOrDie().engine(), StrategyEngine::kDense);

  // Same seed, same bytes — estimate, workload answers, and batches.
  Rng legacy_rng(42), rng(42);
  const Vector legacy_x_hat =
      legacy_mech.ValueOrDie().InferX(x, &legacy_rng);
  const Vector x_hat = mech.ValueOrDie().Release(x, &rng);
  EXPECT_EQ(legacy_x_hat, x_hat);
  EXPECT_EQ(legacy_mech.ValueOrDie().Run(w, x, &legacy_rng),
            mech.ValueOrDie().Run(w, x, &rng));

  Rng legacy_batch_rng(7), batch_rng(7);
  std::vector<Vector> legacy_batch;
  for (int b = 0; b < 3; ++b) {
    legacy_batch.push_back(
        legacy_mech.ValueOrDie().InferX(x, &legacy_batch_rng));
  }
  EXPECT_EQ(legacy_batch,
            mech.ValueOrDie().ReleaseBatch(x, 3, &batch_rng));
}

TEST(Mechanism, KronReleaseByteIdenticalToLegacyKronPath) {
  AllRangeWorkload w(Domain({4, 4}));
  const PrivacyParams budget{0.5, 1e-4};
  const Vector x = RandomData(w.num_cells(), 99);

  auto legacy_design = optimize::EigenDesignKronForWorkload(w);
  ASSERT_TRUE(legacy_design.ok());
  auto legacy_mech = KronMatrixMechanism::Prepare(
      legacy_design.ValueOrDie().strategy, budget);
  ASSERT_TRUE(legacy_mech.ok());

  auto design = Design(w);
  ASSERT_TRUE(design.ok());
  auto mech = Mechanism::Prepare(design.ValueOrDie().strategy, budget);
  ASSERT_TRUE(mech.ok());
  EXPECT_EQ(mech.ValueOrDie().engine(), StrategyEngine::kKron);

  Rng legacy_rng(42), rng(42);
  EXPECT_EQ(legacy_mech.ValueOrDie().InferX(x, &legacy_rng),
            mech.ValueOrDie().Release(x, &rng));
  EXPECT_EQ(legacy_mech.ValueOrDie().Run(w, x, &legacy_rng),
            mech.ValueOrDie().Run(w, x, &rng));

  Rng legacy_batch_rng(7), batch_rng(7);
  EXPECT_EQ(legacy_mech.ValueOrDie().InferXBatch(x, 3, &legacy_batch_rng),
            mech.ValueOrDie().ReleaseBatch(x, 3, &batch_rng));
}

TEST(Mechanism, DesignMechanismAttachesTheCertificate) {
  AllRangeWorkload w(Domain({4, 4}));
  auto design = Design(w);
  ASSERT_TRUE(design.ok());
  auto mech = DesignMechanism(w, PrivacyParams{0.5, 1e-4});
  ASSERT_TRUE(mech.ok()) << mech.status().ToString();
  EXPECT_EQ(mech.ValueOrDie().engine(), StrategyEngine::kKron);
  EXPECT_EQ(mech.ValueOrDie().duality_gap(),
            design.ValueOrDie().duality_gap);
  EXPECT_EQ(mech.ValueOrDie().rank(), design.ValueOrDie().rank);
  EXPECT_EQ(mech.ValueOrDie().solver_report().iterations,
            design.ValueOrDie().solver_report.iterations);
}

TEST(Mechanism, PrepareRejectsNullStrategy) {
  auto mech = Mechanism::Prepare(nullptr, PrivacyParams{0.5, 1e-4});
  ASSERT_FALSE(mech.ok());
  EXPECT_EQ(mech.status().code(), StatusCode::kInvalidArgument);
}

// The unified QueryErrorProfile must reproduce the legacy dense formula
// sigma * sqrt(w_q (A^T A)^+ w_q^T) computed through an explicit Gram
// pseudo-inverse, bit for bit.
TEST(QueryErrorProfile, DenseEngineMatchesExplicitPinvFormula) {
  ExplicitWorkload w = Fig1Workload();
  const PrivacyParams budget{0.5, 1e-4};
  auto design = Design(w);
  ASSERT_TRUE(design.ok());
  const auto& strategy =
      dynamic_cast<const Strategy&>(*design.ValueOrDie().strategy);

  const Vector profile = release::QueryErrorProfile(w, strategy, budget);
  const double sigma =
      GaussianNoiseScale(budget, strategy.L2Sensitivity());
  const linalg::Matrix gram_pinv = linalg::PseudoInverse(strategy.Gram());
  const linalg::Matrix& wm = *w.matrix();
  ASSERT_EQ(profile.size(), wm.rows());
  for (std::size_t q = 0; q < wm.rows(); ++q) {
    const Vector wq = wm.Row(q);
    const Vector gw = linalg::MatVec(gram_pinv, wq);
    const double expected =
        sigma * std::sqrt(std::max(0.0, linalg::Dot(wq, gw)));
    EXPECT_EQ(profile[q], expected) << "query " << q;
  }
}

// Unified ReleaseBatch over a dense strategy: x_hats match sequential
// per-budget mechanism releases byte for byte, and error profiles match
// per-budget QueryErrorProfile — including an uneven budget split.
TEST(ReleaseBatch, DenseEngineMatchesSequentialReleases) {
  ExplicitWorkload w = Fig1Workload();
  auto design = Design(w);
  ASSERT_TRUE(design.ok());
  const auto& strategy = *design.ValueOrDie().strategy;
  const Vector x = RandomData(w.num_cells(), 3);
  const std::vector<PrivacyParams> budgets =
      release::SplitBudget({1.0, 2e-4}, {1.0, 2.0, 1.0});

  Rng batch_rng(11);
  const release::BatchReleaseResult batch =
      release::ReleaseBatch(strategy, x, budgets, &batch_rng, &w);
  ASSERT_EQ(batch.x_hats.size(), budgets.size());
  ASSERT_EQ(batch.error_profiles.size(), budgets.size());

  Rng seq_rng(11);
  const auto& dense = dynamic_cast<const Strategy&>(strategy);
  const MatrixMechanism base =
      MatrixMechanism::Prepare(dense, budgets[0]).ValueOrDie();
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    const Vector expected = (budgets[b].epsilon == budgets[0].epsilon &&
                             budgets[b].delta == budgets[0].delta)
                                ? base.InferX(x, &seq_rng)
                                : base.WithPrivacy(budgets[b])
                                      .InferX(x, &seq_rng);
    EXPECT_EQ(batch.x_hats[b], expected) << "release " << b;
    EXPECT_EQ(batch.error_profiles[b],
              release::QueryErrorProfile(w, strategy, budgets[b]))
        << "profile " << b;
  }
}

// ---- Dense artifact kind (format v2)

StrategyArtifact DenseArtifact(const ExplicitWorkload& w,
                               const std::string& spec) {
  auto design = Design(w);
  EXPECT_TRUE(design.ok()) << design.status().ToString();
  auto& d = design.ValueOrDie();
  EXPECT_EQ(d.engine, StrategyEngine::kDense);
  StrategyArtifact artifact;
  artifact.signature = spec;
  artifact.domain_sizes = w.domain().sizes();
  artifact.strategy = d.strategy;
  artifact.solver_report = d.solver_report;
  artifact.duality_gap = d.duality_gap;
  artifact.rank = d.rank;
  return artifact;
}

TEST(DenseArtifact, SaveLoadSaveIsByteStable) {
  const StrategyArtifact artifact = DenseArtifact(Fig1Workload(), "fig1@2,4");
  const std::string bytes = EncodeStrategyArtifact(artifact);
  auto decoded = DecodeStrategyArtifact(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().engine(), StrategyEngine::kDense);
  EXPECT_EQ(EncodeStrategyArtifact(decoded.ValueOrDie()), bytes);
}

TEST(DenseArtifact, LoadedStrategyBehavesIdentically) {
  const StrategyArtifact artifact = DenseArtifact(Fig1Workload(), "fig1@2,4");
  auto decoded = DecodeStrategyArtifact(EncodeStrategyArtifact(artifact));
  ASSERT_TRUE(decoded.ok());
  const auto& original =
      dynamic_cast<const Strategy&>(*artifact.strategy);
  const auto& loaded =
      dynamic_cast<const Strategy&>(*decoded.ValueOrDie().strategy);
  EXPECT_EQ(loaded.matrix(), original.matrix());
  EXPECT_EQ(loaded.name(), original.name());
  EXPECT_EQ(loaded.L2Sensitivity(), original.L2Sensitivity());
  const Vector x = RandomData(original.num_cells(), 5);
  EXPECT_EQ(loaded.Apply(x), original.Apply(x));
  EXPECT_EQ(loaded.SolveNormal(x), original.SolveNormal(x));
  EXPECT_EQ(decoded.ValueOrDie().duality_gap, artifact.duality_gap);
  EXPECT_EQ(decoded.ValueOrDie().rank, artifact.rank);
}

TEST(DenseArtifact, FileRoundTrip) {
  const StrategyArtifact artifact = DenseArtifact(Fig1Workload(), "fig1@2,4");
  const std::string path = ::testing::TempDir() + "/dpmm_dense.strategy";
  ASSERT_TRUE(serialize::SaveStrategyArtifact(artifact, path).ok());
  auto loaded = serialize::LoadStrategyArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(EncodeStrategyArtifact(loaded.ValueOrDie()),
            EncodeStrategyArtifact(artifact));
  std::remove(path.c_str());
}

TEST(DenseArtifact, TruncationRejectedAtEveryLength) {
  const std::string bytes =
      EncodeStrategyArtifact(DenseArtifact(Fig1Workload(), "fig1@2,4"));
  // Every strict prefix must fail cleanly (never crash, never succeed).
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = DecodeStrategyArtifact(bytes.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(DenseArtifact, CorruptionAndTrailingBytesRejected) {
  const std::string bytes =
      EncodeStrategyArtifact(DenseArtifact(Fig1Workload(), "fig1@2,4"));
  std::string corrupt = bytes;
  corrupt[bytes.size() - 3] ^= 0x40;
  auto flipped = DecodeStrategyArtifact(corrupt);
  ASSERT_FALSE(flipped.ok());
  EXPECT_NE(flipped.status().message().find("checksum"), std::string::npos);
  std::string trailing = bytes;
  trailing += '\0';
  ASSERT_FALSE(DecodeStrategyArtifact(trailing).ok());
}

TEST(DenseArtifact, EngineTagOutOfRangeRejected) {
  // The engine tag sits right after the signature and domain sizes; patch
  // it through a re-encode of hand-built container bytes instead: simplest
  // is to corrupt via the public API — encode, locate the tag by decoding
  // incrementally is brittle, so instead build an artifact whose payload we
  // control end to end.
  const StrategyArtifact artifact = DenseArtifact(Fig1Workload(), "x@2,4");
  std::string bytes = EncodeStrategyArtifact(artifact);
  // Payload layout: u64 siglen + sig + u64 nsizes + 2*u64 + u32 engine.
  const std::size_t header = 8 + 4 + 4 + 8 + 8;
  const std::size_t tag_pos = header + 8 + 5 + 8 + 16;
  ASSERT_LT(tag_pos + 4, bytes.size());
  bytes[tag_pos] = 9;  // engine 9 does not exist
  // Fix the checksum (header bytes 24..31) so the tag check itself is
  // exercised rather than the checksum guard.
  const std::uint64_t checksum =
      serialize::Fnv1a64(bytes.data() + header, bytes.size() - header);
  for (int i = 0; i < 8; ++i) {
    bytes[24 + i] = static_cast<char>(checksum >> (8 * i));
  }
  auto decoded = DecodeStrategyArtifact(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("engine"), std::string::npos)
      << decoded.status().message();
}

// A never-populated strategy field is representable since the shared_ptr
// migration; the Status-returning save path must reject it cleanly (the
// raw encoder CHECKs as a backstop).
TEST(DenseArtifact, NullStrategyIsARecoverableError) {
  StrategyArtifact artifact;
  artifact.signature = "x@4";
  artifact.domain_sizes = {4};
  const std::string path = ::testing::TempDir() + "/dpmm_null.strategy";
  Status st = serialize::SaveStrategyArtifact(artifact, path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// A crafted dense artifact whose u64 row count makes rows * cols wrap to a
// tiny value must fail with a clean Status, not write past an undersized
// allocation (the guard has to divide, not multiply). Truncation property
// tests cannot catch this — it needs a forged length field, not a prefix.
TEST(DenseArtifact, RowCountOverflowLengthBombRejected) {
  StrategyArtifact artifact;
  artifact.signature = "x@4";
  artifact.domain_sizes = {4};
  linalg::Matrix m(2, 4);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 4; ++j) m(i, j) = 1.0;
  }
  artifact.strategy = std::make_shared<Strategy>(std::move(m), "nm");
  std::string bytes = EncodeStrategyArtifact(artifact);

  // Payload: u64 siglen + "x@4" + u64 nsizes + u64 + u32 engine +
  // u64 namelen + "nm" + u64 rows.
  const std::size_t header = 8 + 4 + 4 + 8 + 8;
  const std::size_t rows_pos = header + (8 + 3) + (8 + 8) + 4 + (8 + 2);
  ASSERT_LT(rows_pos + 8, bytes.size());
  const std::uint64_t bomb = std::uint64_t{1} << 61;  // bomb * 8 wraps to 0
  for (int i = 0; i < 8; ++i) {
    bytes[rows_pos + i] = static_cast<char>(bomb >> (8 * i));
  }
  const std::uint64_t checksum =
      serialize::Fnv1a64(bytes.data() + header, bytes.size() - header);
  for (int i = 0; i < 8; ++i) {
    bytes[24 + i] = static_cast<char>(checksum >> (8 * i));
  }
  auto decoded = DecodeStrategyArtifact(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("dimensions"), std::string::npos)
      << decoded.status().message();
}

// ---- v1 compatibility

TEST(ArtifactCompat, V1KronStrategyArtifactStillLoads) {
  AllRangeWorkload w(Domain({4, 4}));
  auto design = Design(w);
  ASSERT_TRUE(design.ok());
  StrategyArtifact artifact;
  artifact.signature = "allrange@4,4";
  artifact.domain_sizes = w.domain().sizes();
  artifact.strategy = design.ValueOrDie().strategy;
  artifact.solver_report = design.ValueOrDie().solver_report;
  artifact.duality_gap = design.ValueOrDie().duality_gap;
  artifact.rank = design.ValueOrDie().rank;

  const std::string v1_bytes =
      serialize::internal::EncodeStrategyArtifactV1(artifact);
  auto decoded = DecodeStrategyArtifact(v1_bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const StrategyArtifact& loaded = decoded.ValueOrDie();
  EXPECT_EQ(loaded.engine(), StrategyEngine::kKron);
  EXPECT_EQ(loaded.signature, artifact.signature);
  EXPECT_EQ(loaded.duality_gap, artifact.duality_gap);

  // The v1-loaded strategy behaves bit-identically to the original.
  const Vector x = RandomData(w.num_cells(), 5);
  EXPECT_EQ(loaded.strategy->Apply(x), artifact.strategy->Apply(x));
  EXPECT_EQ(loaded.strategy->SolveNormal(x), artifact.strategy->SolveNormal(x));

  // v1 truncation is rejected at every prefix too — the compat path keeps
  // the strictness contract.
  for (std::size_t len = 0; len < v1_bytes.size(); len += 9) {
    ASSERT_FALSE(DecodeStrategyArtifact(v1_bytes.substr(0, len)).ok());
  }

  // Re-encoding writes the current version; the upgrade round-trips.
  const std::string v2_bytes = EncodeStrategyArtifact(loaded);
  auto upgraded = DecodeStrategyArtifact(v2_bytes);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded.ValueOrDie().strategy->Apply(x),
            artifact.strategy->Apply(x));
}

TEST(ArtifactCompat, V1ReleaseArtifactStillLoads) {
  serialize::ReleaseArtifact rel;
  rel.signature = "allrange@4,4";
  rel.domain_sizes = {4, 4};
  rel.budget = {0.25, 5e-5};
  rel.dataset = "hist.csv";
  rel.seed = 42;
  rel.batch_index = 3;
  rel.x_hat = RandomData(16, 7);
  // The release payload was identical in v1 and v2 (the version field,
  // header, not checksummed, was the only difference); v3 appended the
  // supersession link, so the legacy encoder plus a version-byte patch
  // reproduces genuine v1 bytes.
  std::string bytes = serialize::internal::EncodeReleaseArtifactV2(rel);
  bytes[8] = 1;
  auto decoded = serialize::DecodeReleaseArtifact(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().x_hat, rel.x_hat);
  // Unknown future versions stay rejected.
  bytes[8] = 4;
  EXPECT_FALSE(serialize::DecodeReleaseArtifact(bytes).ok());
}

// ---- strategy_io on the dense artifact kind

TEST(StrategyIoPort, BinaryRoundTripIsExact) {
  auto design = Design(Fig1Workload());
  ASSERT_TRUE(design.ok());
  const auto& original =
      dynamic_cast<const Strategy&>(*design.ValueOrDie().strategy);
  const std::string path = ::testing::TempDir() + "/dpmm_io_port.strategy";
  ASSERT_TRUE(strategy_io::SaveStrategy(original, path).ok());

  // The file is a binary artifact now, not the legacy text format.
  std::ifstream probe(path, std::ios::binary);
  char magic[8] = {0};
  probe.read(magic, sizeof(magic));
  EXPECT_EQ(std::memcmp(magic, "DPMMARTF", 8), 0);

  auto loaded = strategy_io::LoadStrategy(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().matrix(), original.matrix());
  EXPECT_EQ(loaded.ValueOrDie().name(), original.name());
  std::remove(path.c_str());
}

TEST(StrategyIoPort, LegacyTextFilesStillLoad) {
  const std::string path = ::testing::TempDir() + "/dpmm_io_legacy.txt";
  {
    std::ofstream out(path);
    out << "# dpmm-strategy legacy 2 3\n";
    out << "1 0.5 0\n";
    out << "0 -0.25 1\n";
  }
  auto loaded = strategy_io::LoadStrategy(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().name(), "legacy");
  EXPECT_EQ(loaded.ValueOrDie().matrix()(0, 1), 0.5);
  EXPECT_EQ(loaded.ValueOrDie().matrix()(1, 1), -0.25);
  std::remove(path.c_str());
}

TEST(StrategyIoPort, GarbageAndDamagedArtifactsRejected) {
  const std::string path = ::testing::TempDir() + "/dpmm_io_bad.bin";
  {
    std::ofstream out(path);
    out << "neither a text strategy nor an artifact\n";
  }
  EXPECT_FALSE(strategy_io::LoadStrategy(path).ok());
  {
    // Starts with the artifact magic but is truncated: must report the
    // artifact decode error, not fall through to the text parser.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "DPMMARTF\x02";
  }
  auto damaged = strategy_io::LoadStrategy(path);
  ASSERT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpmm
