// Tests for the persistent thread pool behind ParallelFor: worker reuse
// across calls (steady state creates zero threads), nested-call safety,
// concurrent external callers, the DPMM_THREADS=1 serial path, and the
// thread-safe lazy variant initialization of KronEigenBasis.
//
// CMake registers this binary twice: once with DPMM_THREADS=4 (so the pool
// engages real workers even on single-core CI machines) and once as
// threading_serial_test with DPMM_THREADS=1 running only the SerialEnv
// suite. Suites gate themselves on NumThreads() so either binary skips the
// cases the other covers.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/kron_operator.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/threading.h"

namespace dpmm {
namespace {

TEST(ThreadPool, ReusedAcrossParallelForCalls) {
  ThreadPool pool(4);
  const long created = ThreadPool::TotalThreadsCreated();
  std::vector<std::atomic<int>> hits(4096);
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(0, hits.size(), 64, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Steady state: 200 parallel regions, zero new threads.
  EXPECT_EQ(ThreadPool::TotalThreadsCreated(), created);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 200);
}

TEST(ThreadPool, WorkRunsOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  auto record = [&] {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  };
  auto distinct = [&] {
    std::lock_guard<std::mutex> lock(mu);
    return ids.size();
  };
  pool.ParallelFor(0, 256, 1, [&](std::size_t lo, std::size_t) {
    record();
    if (lo == 0) {
      // Chunk 0 is always claimed first; parking its thread (bounded wait)
      // forces the remaining chunks onto other threads, making multi-thread
      // participation deterministic even on one core.
      for (int spin = 0; spin < 20000 && distinct() < 2; ++spin) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  });
  EXPECT_GT(ids.size(), 1u);
  EXPECT_LE(ids.size(), 4u);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  std::atomic<int> nested_serial{0};
  pool.ParallelFor(0, 16, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t outer = lo; outer < hi; ++outer) {
      EXPECT_TRUE(ThreadPool::InParallelRegion());
      // A nested call — whether through the same pool or the free function
      // — must run inline on this thread without touching the region lock.
      const auto me = std::this_thread::get_id();
      pool.ParallelFor(0, 16, 1, [&](std::size_t nlo, std::size_t nhi) {
        if (std::this_thread::get_id() == me) {
          nested_serial.fetch_add(1, std::memory_order_relaxed);
        }
        for (std::size_t i = nlo; i < nhi; ++i) {
          hits[outer * 16 + i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      ParallelFor(0, 4, 1, [&](std::size_t, std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), me);
      });
    }
  });
  // Every nested invocation ran as one inline call on its caller's thread.
  EXPECT_EQ(nested_serial.load(), 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentExternalCallersSerialize) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(2048);
  auto caller = [&](std::size_t offset) {
    for (int round = 0; round < 50; ++round) {
      pool.ParallelFor(offset, offset + 1024, 16,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           hits[i].fetch_add(1, std::memory_order_relaxed);
                         }
                       });
    }
  };
  std::thread a(caller, 0);
  std::thread b(caller, 1024);
  a.join();
  b.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  // num_threads <= 1: no workers, everything inline on the caller.
  const long created = ThreadPool::TotalThreadsCreated();
  ThreadPool pool(1);
  EXPECT_EQ(ThreadPool::TotalThreadsCreated(), created);
  const auto me = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(0, 100, 10, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), me);
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(GlobalPool, SteadyStateCreatesNoThreads) {
  if (NumThreads() <= 1) {
    GTEST_SKIP() << "needs DPMM_THREADS > 1 (pool disabled on one thread)";
  }
  // Warm the global pool, then check that further calls create nothing.
  std::vector<std::atomic<int>> hits(8192);
  ParallelFor(0, hits.size(), 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  const long created = ThreadPool::TotalThreadsCreated();
  EXPECT_GE(created, NumThreads() - 1);
  for (int round = 0; round < 100; ++round) {
    ParallelFor(0, hits.size(), 8, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(ThreadPool::TotalThreadsCreated(), created);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 101);
}

TEST(SerialEnv, SingleThreadEnvRunsInlineWithoutPool) {
  if (NumThreads() != 1) {
    GTEST_SKIP() << "covered by the DPMM_THREADS=1 ctest registration";
  }
  // DPMM_THREADS=1: the serial path must never create the global pool.
  const long created = ThreadPool::TotalThreadsCreated();
  const auto me = std::this_thread::get_id();
  std::vector<int> hits(1000, 0);
  ParallelFor(0, hits.size(), 1, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), me);
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (int h : hits) ASSERT_EQ(h, 1);
  EXPECT_EQ(ThreadPool::TotalThreadsCreated(), created);
}

// Lazy variant initialization of the Kronecker eigenbasis: racing first
// uses from many threads must build each variant exactly once and agree
// with the serial result.
TEST(KronEigenBasisLazy, ConcurrentFirstUseIsSafe) {
  Rng rng(7);
  std::vector<linalg::Matrix> factors;
  for (int f = 0; f < 2; ++f) {
    linalg::Matrix m(6, 6);
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        m(i, j) = rng.UniformDouble() - 0.5;
      }
    }
    factors.push_back(std::move(m));
  }
  linalg::Vector x(36);
  for (auto& v : x) v = rng.UniformDouble();

  const linalg::KronEigenBasis reference(factors);
  const linalg::Vector want_t = reference.ApplyT(x);
  const linalg::Vector want_sq = reference.ApplySquared(x);
  const linalg::Vector want_sqt = reference.ApplySquaredT(x);
  const linalg::Vector want_abs = reference.ApplyAbs(x);

  for (int round = 0; round < 20; ++round) {
    const linalg::KronEigenBasis basis(factors);  // fresh, variants unbuilt
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        const linalg::Vector got = t % 4 == 0   ? basis.ApplyT(x)
                                   : t % 4 == 1 ? basis.ApplySquared(x)
                                   : t % 4 == 2 ? basis.ApplySquaredT(x)
                                                : basis.ApplyAbs(x);
        const linalg::Vector& want = t % 4 == 0   ? want_t
                                     : t % 4 == 1 ? want_sq
                                     : t % 4 == 2 ? want_sqt
                                                  : want_abs;
        if (got != want) mismatches.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_EQ(mismatches.load(), 0);
  }
}

}  // namespace
}  // namespace dpmm
