// Crash-safety tests for the durability layer: the WAL's framing and
// recovery contract, the fault-injection filesystem double, the budget
// ledger's crash matrix (a simulated power cut at *every* filesystem-
// operation boundary of a charge, with and without a torn tail), and the
// multi-process arbitration protocol driven by real fork(2)ed writers.
//
// This binary deliberately never touches the thread pool (no ParallelFor,
// no AnswerEngine): the fork-based tests must run single-threaded so they
// are exact under TSan, whose runtime aborts a multithreaded fork.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serialize/artifact.h"
#include "serve/budget_ledger.h"
#include "serve/file_lock.h"
#include "serve/fs_ops.h"
#include "serve/store.h"
#include "serve/store_layout.h"
#include "serve/wal.h"
#include "strategy/strategy.h"

namespace dpmm {
namespace {

using serve::BudgetLedger;
using serve::FaultInjectionFsOps;
using serve::FileLock;
using serve::FileLockOptions;
using serve::LedgerEntry;
using serve::LedgerOptions;
using serve::ReadWal;
using serve::SystemFsOps;
using serve::TruncateWal;
using serve::WalReplay;
using serve::WalWriter;

std::string FreshRoot() {
  std::string tmpl = ::testing::TempDir() + "/dpmm_durability_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// ---- WAL framing and recovery

TEST(Wal, Crc32MatchesTheIeeeCheckValue) {
  // The standard check vector for CRC-32/IEEE (the zlib crc32).
  EXPECT_EQ(serve::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(serve::Crc32("", 0), 0u);
}

TEST(Wal, RoundTripsRecordsInOrder) {
  const std::string path = FreshRoot() + "/log.wal";
  std::uint64_t size = 0;
  {
    auto writer = WalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    WalWriter w = std::move(writer).ValueOrDie();
    ASSERT_TRUE(w.Append("first record").ok());
    ASSERT_TRUE(w.Append("").ok());  // empty payloads are legal
    ASSERT_TRUE(w.Append("third record, with spaces").ok());
    size = w.size();
  }
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  const WalReplay& r = replay.ValueOrDie();
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0], "first record");
  EXPECT_EQ(r.records[1], "");
  EXPECT_EQ(r.records[2], "third record, with spaces");
  EXPECT_EQ(r.valid_size, size);
  EXPECT_FALSE(r.torn_tail);

  // Reopening at the replayed size appends cleanly.
  auto reopened = WalWriter::Open(path, r.valid_size);
  ASSERT_TRUE(reopened.ok());
  WalWriter w2 = std::move(reopened).ValueOrDie();
  ASSERT_TRUE(w2.Append("fourth").ok());
  auto replay2 = ReadWal(path);
  ASSERT_TRUE(replay2.ok());
  EXPECT_EQ(replay2.ValueOrDie().records.size(), 4u);
}

TEST(Wal, MissingAndEmptyLogs) {
  const std::string root = FreshRoot();
  EXPECT_EQ(ReadWal(root + "/absent.wal").status().code(),
            StatusCode::kNotFound);
  // An empty file (crash right after create) is a valid empty log.
  WriteFileBytes(root + "/empty.wal", "");
  auto replay = ReadWal(root + "/empty.wal");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.ValueOrDie().records.empty());
  EXPECT_FALSE(replay.ValueOrDie().torn_tail);
}

TEST(Wal, TornTailEndsReplayAndTruncatesAway) {
  const std::string path = FreshRoot() + "/log.wal";
  {
    auto writer = WalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok());
    WalWriter w = std::move(writer).ValueOrDie();
    ASSERT_TRUE(w.Append("one").ok());
    ASSERT_TRUE(w.Append("two").ok());
  }
  const std::string intact = ReadFileBytes(path);
  // A crash mid-append leaves a partial frame: a length prefix promising
  // more bytes than exist.
  WriteFileBytes(path, intact + std::string("\x40\x00\x00\x00junk", 8));
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.ValueOrDie().records.size(), 2u);
  EXPECT_EQ(replay.ValueOrDie().valid_size, intact.size());
  EXPECT_TRUE(replay.ValueOrDie().torn_tail);

  // The writer refuses to append past damage...
  EXPECT_FALSE(WalWriter::Open(path, intact.size()).ok());
  // ...until the tail is truncated off.
  ASSERT_TRUE(TruncateWal(path, intact.size()).ok());
  auto reopened = WalWriter::Open(path, intact.size());
  ASSERT_TRUE(reopened.ok());
  WalWriter w = std::move(reopened).ValueOrDie();
  ASSERT_TRUE(w.Append("three").ok());
  auto healed = ReadWal(path);
  ASSERT_TRUE(healed.ok());
  ASSERT_EQ(healed.ValueOrDie().records.size(), 3u);
  EXPECT_EQ(healed.ValueOrDie().records[2], "three");
  EXPECT_FALSE(healed.ValueOrDie().torn_tail);
}

TEST(Wal, CorruptPayloadFailsItsCrcAndEndsTheLog) {
  const std::string path = FreshRoot() + "/log.wal";
  {
    auto writer = WalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok());
    WalWriter w = std::move(writer).ValueOrDie();
    ASSERT_TRUE(w.Append("good record").ok());
    ASSERT_TRUE(w.Append("soon corrupt").ok());
  }
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 3] ^= 0x01;  // flip one bit inside the last payload
  WriteFileBytes(path, bytes);
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.ValueOrDie().records.size(), 1u);
  EXPECT_EQ(replay.ValueOrDie().records[0], "good record");
  EXPECT_TRUE(replay.ValueOrDie().torn_tail);
}

// ---- The fault-injection double itself

TEST(FaultInjection, ShortWriteLeavesATornFrameReplayIgnores) {
  const std::string path = FreshRoot() + "/log.wal";
  FaultInjectionFsOps fault(SystemFsOps());
  auto writer = WalWriter::Open(path, 0, &fault);
  ASSERT_TRUE(writer.ok());
  WalWriter w = std::move(writer).ValueOrDie();
  ASSERT_TRUE(w.Append("durable").ok());
  const std::uint64_t durable_size = w.size();
  fault.set_short_next_write(true);
  EXPECT_FALSE(w.Append("torn away").ok());
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.ValueOrDie().records.size(), 1u);
  EXPECT_EQ(replay.ValueOrDie().records[0], "durable");
  EXPECT_EQ(replay.ValueOrDie().valid_size, durable_size);
  EXPECT_TRUE(replay.ValueOrDie().torn_tail);
}

TEST(FaultInjection, FailedFsyncFailsTheAppend) {
  const std::string path = FreshRoot() + "/log.wal";
  FaultInjectionFsOps fault(SystemFsOps());
  auto writer = WalWriter::Open(path, 0, &fault);
  ASSERT_TRUE(writer.ok());
  WalWriter w = std::move(writer).ValueOrDie();
  fault.set_fail_next_fsync(true);
  Status st = w.Append("never acknowledged");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("fsync"), std::string::npos);
}

TEST(FaultInjection, CrashRollsBackUnsyncedCreatesAndTails) {
  const std::string root = FreshRoot();
  FaultInjectionFsOps fault(SystemFsOps());
  // A file created and written through the seam but never FsyncDir'd: the
  // crash removes its name entirely.
  auto fd = fault.OpenForAppend(root + "/unsynced");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fault.WriteAll(fd.ValueOrDie(), "abc", 3).ok());
  ASSERT_TRUE(fault.Fsync(fd.ValueOrDie()).ok());
  ASSERT_TRUE(fault.Close(fd.ValueOrDie()).ok());
  // A pre-existing file with an unsynced tail: the tail truncates away.
  WriteFileBytes(root + "/tailed", "durable-");
  auto fd2 = fault.OpenForAppend(root + "/tailed");
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(fault.WriteAll(fd2.ValueOrDie(), "lost", 4).ok());
  ASSERT_TRUE(fault.Close(fd2.ValueOrDie()).ok());
  fault.set_crash_after(0);
  EXPECT_FALSE(fault.Remove(root + "/anything").ok());
  EXPECT_TRUE(fault.crashed());
  ASSERT_TRUE(fault.SimulateCrashEffects(/*torn_tail=*/false).ok());
  struct stat st;
  EXPECT_NE(::stat((root + "/unsynced").c_str(), &st), 0)
      << "unsynced dirent must not survive the crash";
  EXPECT_EQ(ReadFileBytes(root + "/tailed"), "durable-");
}

// ---- Crash matrix: the ledger at every syscall boundary

PrivacyParams Eps(double epsilon) { return {epsilon, 0.0}; }

/// Pre-charges `pre` times eps 0.05 with the real filesystem, then runs one
/// more charge of eps 0.05 with a fault injected after `crash_after` fs
/// operations and a simulated power cut. Returns true when the run crashed
/// (false = `crash_after` exceeded the charge's total op count and the
/// matrix is exhausted). After the cut, recovery with the real filesystem
/// must observe exactly the pre- or the post-charge state.
bool CrashMatrixTrial(std::size_t pre, std::size_t checkpoint_interval,
                      long crash_after, bool torn_tail) {
  const std::string root = FreshRoot();
  const PrivacyParams total = Eps(1.0);
  LedgerOptions setup_options;
  setup_options.checkpoint_interval = checkpoint_interval;
  {
    BudgetLedger setup(root, setup_options);
    for (std::size_t i = 0; i < pre; ++i) {
      auto charged = setup.Charge("matrix", total, Eps(0.05));
      EXPECT_TRUE(charged.ok()) << charged.status().ToString();
    }
  }

  FaultInjectionFsOps fault(SystemFsOps());
  fault.set_crash_after(crash_after);
  LedgerOptions options = setup_options;
  options.fs = &fault;
  bool acknowledged = false;
  {
    BudgetLedger victim(root, options);
    acknowledged = victim.Charge("matrix", total, Eps(0.05)).ok();
  }
  if (!fault.crashed()) {
    EXPECT_TRUE(acknowledged);
    return false;
  }
  EXPECT_TRUE(fault.SimulateCrashEffects(torn_tail).ok());

  SCOPED_TRACE("pre=" + std::to_string(pre) + " interval=" +
               std::to_string(checkpoint_interval) + " crash_after=" +
               std::to_string(crash_after) + " torn=" +
               std::to_string(torn_tail));
  BudgetLedger recovered(root, setup_options);
  auto read = recovered.Read("matrix");
  if (pre == 0 && !read.ok()) {
    // With no prior history the pre-state is "never charged".
    EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  } else {
    EXPECT_TRUE(read.ok()) << read.status().ToString();
    if (read.ok()) {
      const LedgerEntry& entry = read.ValueOrDie();
      EXPECT_TRUE(entry.charges == pre || entry.charges == pre + 1)
          << "recovered " << entry.charges << " charges";
      if (acknowledged) {
        // An acknowledged charge (possible when only the post-append
        // checkpoint crashed) must never be lost.
        EXPECT_EQ(entry.charges, pre + 1);
      }
      EXPECT_DOUBLE_EQ(entry.spent.epsilon, 0.05 * entry.charges);
    }
  }
  // The survivor must be chargeable: recovery left no wedged state.
  BudgetLedger after(root, setup_options);
  auto next = after.Charge("matrix", total, Eps(0.05));
  EXPECT_TRUE(next.ok()) << next.status().ToString();
  return true;
}

TEST(CrashMatrix, EveryBoundaryOfAPlainCharge) {
  for (const bool torn : {false, true}) {
    for (long k = 0; k < 64; ++k) {
      if (!CrashMatrixTrial(/*pre=*/2, /*checkpoint_interval=*/64, k, torn)) {
        ASSERT_GT(k, 0) << "the charge performed no fs operations?";
        break;
      }
    }
  }
}

TEST(CrashMatrix, EveryBoundaryOfTheFirstChargeOfADataset) {
  for (const bool torn : {false, true}) {
    for (long k = 0; k < 64; ++k) {
      if (!CrashMatrixTrial(/*pre=*/0, /*checkpoint_interval=*/64, k, torn)) {
        break;
      }
    }
  }
}

TEST(CrashMatrix, EveryBoundaryOfACheckpointingCharge) {
  // checkpoint_interval 3 makes the third charge compact the WAL into the
  // snapshot: the matrix now crosses WriteViaRename (temp write, fsync,
  // rename, dir fsync) and the WAL truncation, and the acknowledged-charge
  // invariant is load-bearing (the checkpoint crash is swallowed).
  for (const bool torn : {false, true}) {
    for (long k = 0; k < 64; ++k) {
      if (!CrashMatrixTrial(/*pre=*/2, /*checkpoint_interval=*/3, k, torn)) {
        break;
      }
    }
  }
}

// ---- Idempotent charge ids

TEST(BudgetLedgerDurability, RetryingAChargeIdAppliesExactlyOnce) {
  const std::string root = FreshRoot();
  BudgetLedger ledger(root);
  const PrivacyParams total = Eps(1.0);
  ASSERT_TRUE(ledger.Charge("d", total, Eps(0.25), "run-1").ok());
  auto retry = ledger.Charge("d", total, Eps(0.25), "run-1");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.ValueOrDie().charges, 1u);
  EXPECT_DOUBLE_EQ(retry.ValueOrDie().spent.epsilon, 0.25);
}

TEST(BudgetLedgerDurability, IdempotencySurvivesCheckpointCompaction) {
  // With checkpoint_interval 1 every charge is immediately compacted out of
  // the WAL; the dedup window must persist through the snapshot's `recent`
  // list, or a post-checkpoint retry would double-charge.
  const std::string root = FreshRoot();
  LedgerOptions options;
  options.checkpoint_interval = 1;
  BudgetLedger ledger(root, options);
  const PrivacyParams total = Eps(1.0);
  ASSERT_TRUE(ledger.Charge("d", total, Eps(0.25), "run-1").ok());
  // A new instance (a new process) reads the window back from disk.
  BudgetLedger other(root, options);
  auto retry = other.Charge("d", total, Eps(0.25), "run-1");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.ValueOrDie().charges, 1u);
  EXPECT_DOUBLE_EQ(retry.ValueOrDie().spent.epsilon, 0.25);
}

// ---- File locks

TEST(FileLockTest, ExclusiveExcludesAndSharedShares) {
  // flock ownership is per open file description, so a second Acquire in
  // this same process genuinely contends.
  const std::string path = FreshRoot() + "/d.lock";
  FileLockOptions fast;
  fast.timeout_ms = 50;
  auto first = FileLock::Acquire(path, fast);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  FileLock writer_lock = std::move(first).ValueOrDie();
  EXPECT_TRUE(writer_lock.held());

  auto contender = FileLock::Acquire(path, fast);
  ASSERT_FALSE(contender.ok());
  EXPECT_EQ(contender.status().code(), StatusCode::kUnavailable);

  FileLockOptions shared = fast;
  shared.shared = true;
  auto reader = FileLock::Acquire(path, shared);
  ASSERT_FALSE(reader.ok()) << "shared must wait out an exclusive holder";

  writer_lock.Release();
  EXPECT_FALSE(writer_lock.held());
  auto reader1 = FileLock::Acquire(path, shared);
  auto reader2 = FileLock::Acquire(path, shared);
  EXPECT_TRUE(reader1.ok());
  EXPECT_TRUE(reader2.ok()) << "two shared holders must coexist";
  auto writer = FileLock::Acquire(path, fast);
  EXPECT_FALSE(writer.ok()) << "exclusive must wait out shared holders";
}

// ---- Multi-process arbitration (real fork(2)ed writers)

/// Forks a child that performs `attempts` charges of eps `step` against
/// `total` and exits with the number of *accepted* charges; any failure
/// other than a clean ResourceExhausted refusal exits 99. Charges go
/// through a small checkpoint interval so the race also crosses WAL
/// compaction. Returns the child's pid.
pid_t StartCharger(const std::string& root, const PrivacyParams& total,
                   double step, int attempts) {
  fflush(nullptr);  // no duplicated stdio buffers in the child
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  LedgerOptions options;
  options.checkpoint_interval = 4;
  BudgetLedger ledger(root, options);
  int accepted = 0;
  for (int i = 0; i < attempts; ++i) {
    auto charged = ledger.Charge("race", total, Eps(step));
    if (charged.ok()) {
      ++accepted;
    } else if (charged.status().code() != StatusCode::kResourceExhausted) {
      ::_exit(99);
    }
  }
  ::_exit(accepted);
}

/// Waits for a StartCharger child; returns its accepted-charge count.
int JoinCharger(pid_t pid) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : 99;
  EXPECT_NE(code, 99) << "charger hit a non-refusal failure";
  return code;
}

/// Races two forked writer processes, `attempts` charges of eps `step`
/// each, and cross-checks their combined acceptance count against the
/// recovered on-disk state.
void RaceTwoChargers(double total_eps, double step, int attempts,
                     int expect_accepted) {
  const std::string root = FreshRoot();
  const PrivacyParams total = Eps(total_eps);
  const pid_t a = StartCharger(root, total, step, attempts);
  ASSERT_GT(a, 0);
  const pid_t b = StartCharger(root, total, step, attempts);
  ASSERT_GT(b, 0);
  const int accepted = JoinCharger(a) + JoinCharger(b);
  EXPECT_EQ(accepted, expect_accepted);

  BudgetLedger ledger(root);
  auto read = ledger.Read("race");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const LedgerEntry& entry = read.ValueOrDie();
  EXPECT_EQ(entry.charges, static_cast<std::size_t>(accepted))
      << "an accepted charge is missing from (or duplicated in) the ledger";
  EXPECT_NEAR(entry.spent.epsilon, step * accepted, 1e-12);
  EXPECT_FALSE(entry.Overdrawn());
}

TEST(MultiProcess, RacingChargersNeverUnderCount) {
  // Two concurrent writer processes, 25 charges each, all of which fit:
  // every accepted charge must be visible in the recovered sum — a lost
  // update here is a silent privacy violation.
  RaceTwoChargers(/*total_eps=*/0.5, /*step=*/0.01, /*attempts=*/25,
                  /*expect_accepted=*/50);
}

TEST(MultiProcess, RacingChargersSplitACapAndRefuseTheRest) {
  // The budget only fits 30 of the 50 racing charges: the processes must
  // between them land exactly 30, refusing the rest cleanly — never an
  // overdraft, never a refusal while budget remained.
  RaceTwoChargers(/*total_eps=*/0.3, /*step=*/0.01, /*attempts=*/25,
                  /*expect_accepted=*/30);
}

// ---- Crash matrix: the sharded artifact store

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// The release filename the store uses (store.cc IdName).
std::string ReleaseName(std::size_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06zu.release", id);
  return buf;
}

serialize::StrategyArtifact StoreStrategy(const std::string& spec,
                                          const Domain& domain) {
  serialize::StrategyArtifact artifact;
  artifact.signature = serve::CanonicalSignature(spec, domain);
  artifact.domain_sizes = domain.sizes();
  artifact.strategy =
      std::make_shared<Strategy>(IdentityStrategy(domain.NumCells()));
  artifact.rank = domain.NumCells();
  return artifact;
}

serialize::ReleaseArtifact StoreRelease(const std::string& signature,
                                        const Domain& domain,
                                        std::uint64_t batch_index,
                                        double fill) {
  serialize::ReleaseArtifact rel;
  rel.signature = signature;
  rel.domain_sizes = domain.sizes();
  rel.budget = {0.1, 1e-5};
  rel.dataset = "d";
  rel.seed = 1;
  rel.batch_index = batch_index;
  rel.x_hat.assign(domain.NumCells(), fill);
  return rel;
}

/// A migrating store mid-upgrade, built with the real filesystem: a flat v1
/// history (one strategy; releases d#0, d#1, d#2 as ids 0-2) under a
/// sharded overlay (d#3 as id 3, plus a second generation of slot d#2 as
/// id 4 — which makes flat id 2 provably dead at compaction's adoption
/// step). Captures the bytes compaction must preserve.
struct MigratingStore {
  std::string root;
  std::string sig;
  std::string key;
  std::string strategy_bytes;
  std::map<std::size_t, std::string> live;  // id -> encoded release bytes
};

MigratingStore SeedMigratingStore() {
  MigratingStore s;
  s.root = FreshRoot();
  const Domain domain({2, 2});
  const serialize::StrategyArtifact strategy = StoreStrategy("mig", domain);
  s.sig = strategy.signature;
  s.key = serve::StoreKey(s.sig);
  {
    serve::StrategyStore sstore(s.root);
    EXPECT_TRUE(sstore.Put(strategy).ok());
    serve::ReleaseStore flat(s.root);
    for (std::uint64_t b = 0; b < 3; ++b) {
      auto id = flat.Put(StoreRelease(s.sig, domain, b, 10.0 * b));
      EXPECT_TRUE(id.ok()) << id.status().ToString();
    }
  }
  serve::StoreOptions sharded;
  sharded.shards = 2;
  serve::ReleaseStore overlay(s.root, sharded);
  auto id3 = overlay.Put(StoreRelease(s.sig, domain, 3, 30.0));
  EXPECT_TRUE(id3.ok() && id3.ValueOrDie() == 3u);
  auto id4 = overlay.Put(StoreRelease(s.sig, domain, 2, 42.0));
  EXPECT_TRUE(id4.ok() && id4.ValueOrDie() == 4u);

  s.strategy_bytes =
      ReadFileBytes(s.root + "/strategies/" + s.key + ".strategy");
  const std::string flat_dir = s.root + "/releases/" + s.key;
  s.live[0] = ReadFileBytes(flat_dir + "/" + ReleaseName(0));
  s.live[1] = ReadFileBytes(flat_dir + "/" + ReleaseName(1));
  auto layout = serve::StoreLayout::Resolve(s.root, 0);
  EXPECT_TRUE(layout.ok());
  const std::string shard_dir = layout.ValueOrDie().ReleaseDir(s.key);
  s.live[3] = ReadFileBytes(shard_dir + "/" + ReleaseName(3));
  s.live[4] = ReadFileBytes(shard_dir + "/" + ReleaseName(4));
  for (const auto& [id, bytes] : s.live) {
    EXPECT_FALSE(bytes.empty()) << "seed failed to store id " << id;
  }
  return s;
}

/// Runs one compaction with a crash injected after `crash_after` fs
/// operations and a simulated power cut, then recovers with the real
/// filesystem. Returns false when `crash_after` exceeded the compaction's
/// op count (matrix exhausted). Whatever the boundary: recovery must
/// converge to the fully compacted store with every live artifact byte-
/// identical — a crash may repeat work, never lose a paid-for release.
bool CompactionCrashTrial(long crash_after, bool torn_tail) {
  const MigratingStore s = SeedMigratingStore();

  FaultInjectionFsOps fault(SystemFsOps());
  fault.set_crash_after(crash_after);
  serve::StoreOptions options;
  options.fs = &fault;
  auto crashed_run = serve::CompactStore(s.root, options);
  if (!fault.crashed()) {
    EXPECT_TRUE(crashed_run.ok()) << crashed_run.status().ToString();
    return false;
  }
  EXPECT_TRUE(fault.SimulateCrashEffects(torn_tail).ok());

  SCOPED_TRACE("crash_after=" + std::to_string(crash_after) + " torn=" +
               std::to_string(torn_tail));
  auto recovered = serve::CompactStore(s.root);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  if (!recovered.ok()) return true;
  EXPECT_EQ(recovered.ValueOrDie().live_kept, s.live.size());

  auto layout = serve::StoreLayout::Resolve(s.root, 0);
  EXPECT_TRUE(layout.ok());
  if (layout.ok()) {
    const serve::StoreLayout& l = layout.ValueOrDie();
    EXPECT_EQ(ReadFileBytes(l.StrategyPath(s.key)), s.strategy_bytes);
    for (const auto& [id, bytes] : s.live) {
      EXPECT_EQ(ReadFileBytes(l.ReleaseDir(s.key) + "/" + ReleaseName(id)),
                bytes)
          << "live release " << id << " lost or altered";
    }
    // The superseded generation and the flat originals are gone.
    EXPECT_FALSE(FileExists(l.ReleaseDir(s.key) + "/" + ReleaseName(2)));
    EXPECT_FALSE(FileExists(s.root + "/strategies/" + s.key + ".strategy"));
    EXPECT_FALSE(
        FileExists(s.root + "/releases/" + s.key + "/" + ReleaseName(0)));
  }

  // The recovered store serves, and only the live set.
  serve::ReleaseStore after(s.root);
  for (const auto& [id, bytes] : s.live) {
    (void)bytes;
    EXPECT_TRUE(after.Get(s.sig, id).ok()) << "id " << id;
  }
  EXPECT_EQ(after.Get(s.sig, 2).status().code(), StatusCode::kNotFound);
  return true;
}

TEST(CrashMatrix, EveryBoundaryOfAMigratingCompaction) {
  for (const bool torn : {false, true}) {
    for (long k = 0; k < 512; ++k) {
      if (!CompactionCrashTrial(k, torn)) {
        ASSERT_GT(k, 0) << "the compaction performed no fs operations?";
        break;
      }
      ASSERT_LT(k, 511) << "compaction op count exceeded the matrix bound";
    }
  }
}

/// One sharded ReleaseStore::Put with a crash at every fs boundary. The
/// prior release must always survive; the interrupted put is either fully
/// absent or — when its artifact file reached the disk before the cut —
/// adopted by the next compaction and served. Either way the store stays
/// writable.
bool ShardedPutCrashTrial(long crash_after, bool torn_tail) {
  const std::string root = FreshRoot();
  const Domain domain({2, 2});
  const serialize::StrategyArtifact strategy = StoreStrategy("put", domain);
  serve::StoreOptions sharded;
  sharded.shards = 2;
  {
    serve::StrategyStore sstore(root, sharded);
    EXPECT_TRUE(sstore.Put(strategy).ok());
    serve::ReleaseStore seed(root, sharded);
    auto id = seed.Put(StoreRelease(strategy.signature, domain, 0, 1.0));
    EXPECT_TRUE(id.ok() && id.ValueOrDie() == 0u);
  }
  auto layout = serve::StoreLayout::Resolve(root, 0);
  EXPECT_TRUE(layout.ok());
  const std::string key = serve::StoreKey(strategy.signature);
  const std::string prior_path =
      layout.ValueOrDie().ReleaseDir(key) + "/" + ReleaseName(0);
  const std::string prior_bytes = ReadFileBytes(prior_path);
  EXPECT_FALSE(prior_bytes.empty());

  FaultInjectionFsOps fault(SystemFsOps());
  fault.set_crash_after(crash_after);
  serve::StoreOptions options = sharded;
  options.fs = &fault;
  bool acknowledged = false;
  {
    serve::ReleaseStore victim(root, options);
    acknowledged =
        victim.Put(StoreRelease(strategy.signature, domain, 1, 7.0)).ok();
  }
  if (!fault.crashed()) {
    EXPECT_TRUE(acknowledged);
    return false;
  }
  EXPECT_FALSE(acknowledged) << "a put that crashed mid-flight acked";
  EXPECT_TRUE(fault.SimulateCrashEffects(torn_tail).ok());

  SCOPED_TRACE("crash_after=" + std::to_string(crash_after) + " torn=" +
               std::to_string(torn_tail));
  // Compaction is the recovery pass: it must succeed over whatever the cut
  // left (a torn manifest tail, an unmanifested artifact file, nothing).
  auto recovered = serve::CompactStore(root);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();

  serve::ReleaseStore after(root);
  auto prior = after.Get(strategy.signature, 0);
  EXPECT_TRUE(prior.ok()) << prior.status().ToString();
  if (prior.ok()) {
    EXPECT_EQ(serialize::EncodeReleaseArtifact(*prior.ValueOrDie()),
              prior_bytes);
  }
  auto interrupted = after.Get(strategy.signature, 1);
  if (interrupted.ok()) {
    EXPECT_EQ(interrupted.ValueOrDie()->x_hat[0], 7.0);
  } else {
    EXPECT_EQ(interrupted.status().code(), StatusCode::kNotFound);
  }

  // Still writable: the next put lands on a fresh id past everything seen.
  auto next = after.Put(StoreRelease(strategy.signature, domain, 2, 9.0));
  EXPECT_TRUE(next.ok()) << next.status().ToString();
  if (next.ok()) {
    EXPECT_TRUE(after.Get(strategy.signature, next.ValueOrDie()).ok());
  }
  return true;
}

TEST(CrashMatrix, EveryBoundaryOfAShardedPut) {
  for (const bool torn : {false, true}) {
    for (long k = 0; k < 128; ++k) {
      if (!ShardedPutCrashTrial(k, torn)) {
        ASSERT_GT(k, 0) << "the put performed no fs operations?";
        break;
      }
      ASSERT_LT(k, 127) << "put op count exceeded the matrix bound";
    }
  }
}

}  // namespace
}  // namespace dpmm
