// Crash-safety tests for the durability layer: the WAL's framing and
// recovery contract, the fault-injection filesystem double, the budget
// ledger's crash matrix (a simulated power cut at *every* filesystem-
// operation boundary of a charge, with and without a torn tail), and the
// multi-process arbitration protocol driven by real fork(2)ed writers.
//
// This binary deliberately never touches the thread pool (no ParallelFor,
// no AnswerEngine): the fork-based tests must run single-threaded so they
// are exact under TSan, whose runtime aborts a multithreaded fork.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/budget_ledger.h"
#include "serve/file_lock.h"
#include "serve/fs_ops.h"
#include "serve/store.h"
#include "serve/wal.h"

namespace dpmm {
namespace {

using serve::BudgetLedger;
using serve::FaultInjectionFsOps;
using serve::FileLock;
using serve::FileLockOptions;
using serve::LedgerEntry;
using serve::LedgerOptions;
using serve::ReadWal;
using serve::SystemFsOps;
using serve::TruncateWal;
using serve::WalReplay;
using serve::WalWriter;

std::string FreshRoot() {
  std::string tmpl = ::testing::TempDir() + "/dpmm_durability_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// ---- WAL framing and recovery

TEST(Wal, Crc32MatchesTheIeeeCheckValue) {
  // The standard check vector for CRC-32/IEEE (the zlib crc32).
  EXPECT_EQ(serve::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(serve::Crc32("", 0), 0u);
}

TEST(Wal, RoundTripsRecordsInOrder) {
  const std::string path = FreshRoot() + "/log.wal";
  std::uint64_t size = 0;
  {
    auto writer = WalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    WalWriter w = std::move(writer).ValueOrDie();
    ASSERT_TRUE(w.Append("first record").ok());
    ASSERT_TRUE(w.Append("").ok());  // empty payloads are legal
    ASSERT_TRUE(w.Append("third record, with spaces").ok());
    size = w.size();
  }
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  const WalReplay& r = replay.ValueOrDie();
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0], "first record");
  EXPECT_EQ(r.records[1], "");
  EXPECT_EQ(r.records[2], "third record, with spaces");
  EXPECT_EQ(r.valid_size, size);
  EXPECT_FALSE(r.torn_tail);

  // Reopening at the replayed size appends cleanly.
  auto reopened = WalWriter::Open(path, r.valid_size);
  ASSERT_TRUE(reopened.ok());
  WalWriter w2 = std::move(reopened).ValueOrDie();
  ASSERT_TRUE(w2.Append("fourth").ok());
  auto replay2 = ReadWal(path);
  ASSERT_TRUE(replay2.ok());
  EXPECT_EQ(replay2.ValueOrDie().records.size(), 4u);
}

TEST(Wal, MissingAndEmptyLogs) {
  const std::string root = FreshRoot();
  EXPECT_EQ(ReadWal(root + "/absent.wal").status().code(),
            StatusCode::kNotFound);
  // An empty file (crash right after create) is a valid empty log.
  WriteFileBytes(root + "/empty.wal", "");
  auto replay = ReadWal(root + "/empty.wal");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.ValueOrDie().records.empty());
  EXPECT_FALSE(replay.ValueOrDie().torn_tail);
}

TEST(Wal, TornTailEndsReplayAndTruncatesAway) {
  const std::string path = FreshRoot() + "/log.wal";
  {
    auto writer = WalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok());
    WalWriter w = std::move(writer).ValueOrDie();
    ASSERT_TRUE(w.Append("one").ok());
    ASSERT_TRUE(w.Append("two").ok());
  }
  const std::string intact = ReadFileBytes(path);
  // A crash mid-append leaves a partial frame: a length prefix promising
  // more bytes than exist.
  WriteFileBytes(path, intact + std::string("\x40\x00\x00\x00junk", 8));
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.ValueOrDie().records.size(), 2u);
  EXPECT_EQ(replay.ValueOrDie().valid_size, intact.size());
  EXPECT_TRUE(replay.ValueOrDie().torn_tail);

  // The writer refuses to append past damage...
  EXPECT_FALSE(WalWriter::Open(path, intact.size()).ok());
  // ...until the tail is truncated off.
  ASSERT_TRUE(TruncateWal(path, intact.size()).ok());
  auto reopened = WalWriter::Open(path, intact.size());
  ASSERT_TRUE(reopened.ok());
  WalWriter w = std::move(reopened).ValueOrDie();
  ASSERT_TRUE(w.Append("three").ok());
  auto healed = ReadWal(path);
  ASSERT_TRUE(healed.ok());
  ASSERT_EQ(healed.ValueOrDie().records.size(), 3u);
  EXPECT_EQ(healed.ValueOrDie().records[2], "three");
  EXPECT_FALSE(healed.ValueOrDie().torn_tail);
}

TEST(Wal, CorruptPayloadFailsItsCrcAndEndsTheLog) {
  const std::string path = FreshRoot() + "/log.wal";
  {
    auto writer = WalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok());
    WalWriter w = std::move(writer).ValueOrDie();
    ASSERT_TRUE(w.Append("good record").ok());
    ASSERT_TRUE(w.Append("soon corrupt").ok());
  }
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 3] ^= 0x01;  // flip one bit inside the last payload
  WriteFileBytes(path, bytes);
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.ValueOrDie().records.size(), 1u);
  EXPECT_EQ(replay.ValueOrDie().records[0], "good record");
  EXPECT_TRUE(replay.ValueOrDie().torn_tail);
}

// ---- The fault-injection double itself

TEST(FaultInjection, ShortWriteLeavesATornFrameReplayIgnores) {
  const std::string path = FreshRoot() + "/log.wal";
  FaultInjectionFsOps fault(SystemFsOps());
  auto writer = WalWriter::Open(path, 0, &fault);
  ASSERT_TRUE(writer.ok());
  WalWriter w = std::move(writer).ValueOrDie();
  ASSERT_TRUE(w.Append("durable").ok());
  const std::uint64_t durable_size = w.size();
  fault.set_short_next_write(true);
  EXPECT_FALSE(w.Append("torn away").ok());
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.ValueOrDie().records.size(), 1u);
  EXPECT_EQ(replay.ValueOrDie().records[0], "durable");
  EXPECT_EQ(replay.ValueOrDie().valid_size, durable_size);
  EXPECT_TRUE(replay.ValueOrDie().torn_tail);
}

TEST(FaultInjection, FailedFsyncFailsTheAppend) {
  const std::string path = FreshRoot() + "/log.wal";
  FaultInjectionFsOps fault(SystemFsOps());
  auto writer = WalWriter::Open(path, 0, &fault);
  ASSERT_TRUE(writer.ok());
  WalWriter w = std::move(writer).ValueOrDie();
  fault.set_fail_next_fsync(true);
  Status st = w.Append("never acknowledged");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("fsync"), std::string::npos);
}

TEST(FaultInjection, CrashRollsBackUnsyncedCreatesAndTails) {
  const std::string root = FreshRoot();
  FaultInjectionFsOps fault(SystemFsOps());
  // A file created and written through the seam but never FsyncDir'd: the
  // crash removes its name entirely.
  auto fd = fault.OpenForAppend(root + "/unsynced");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fault.WriteAll(fd.ValueOrDie(), "abc", 3).ok());
  ASSERT_TRUE(fault.Fsync(fd.ValueOrDie()).ok());
  ASSERT_TRUE(fault.Close(fd.ValueOrDie()).ok());
  // A pre-existing file with an unsynced tail: the tail truncates away.
  WriteFileBytes(root + "/tailed", "durable-");
  auto fd2 = fault.OpenForAppend(root + "/tailed");
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(fault.WriteAll(fd2.ValueOrDie(), "lost", 4).ok());
  ASSERT_TRUE(fault.Close(fd2.ValueOrDie()).ok());
  fault.set_crash_after(0);
  EXPECT_FALSE(fault.Remove(root + "/anything").ok());
  EXPECT_TRUE(fault.crashed());
  ASSERT_TRUE(fault.SimulateCrashEffects(/*torn_tail=*/false).ok());
  struct stat st;
  EXPECT_NE(::stat((root + "/unsynced").c_str(), &st), 0)
      << "unsynced dirent must not survive the crash";
  EXPECT_EQ(ReadFileBytes(root + "/tailed"), "durable-");
}

// ---- Crash matrix: the ledger at every syscall boundary

PrivacyParams Eps(double epsilon) { return {epsilon, 0.0}; }

/// Pre-charges `pre` times eps 0.05 with the real filesystem, then runs one
/// more charge of eps 0.05 with a fault injected after `crash_after` fs
/// operations and a simulated power cut. Returns true when the run crashed
/// (false = `crash_after` exceeded the charge's total op count and the
/// matrix is exhausted). After the cut, recovery with the real filesystem
/// must observe exactly the pre- or the post-charge state.
bool CrashMatrixTrial(std::size_t pre, std::size_t checkpoint_interval,
                      long crash_after, bool torn_tail) {
  const std::string root = FreshRoot();
  const PrivacyParams total = Eps(1.0);
  LedgerOptions setup_options;
  setup_options.checkpoint_interval = checkpoint_interval;
  {
    BudgetLedger setup(root, setup_options);
    for (std::size_t i = 0; i < pre; ++i) {
      auto charged = setup.Charge("matrix", total, Eps(0.05));
      EXPECT_TRUE(charged.ok()) << charged.status().ToString();
    }
  }

  FaultInjectionFsOps fault(SystemFsOps());
  fault.set_crash_after(crash_after);
  LedgerOptions options = setup_options;
  options.fs = &fault;
  bool acknowledged = false;
  {
    BudgetLedger victim(root, options);
    acknowledged = victim.Charge("matrix", total, Eps(0.05)).ok();
  }
  if (!fault.crashed()) {
    EXPECT_TRUE(acknowledged);
    return false;
  }
  EXPECT_TRUE(fault.SimulateCrashEffects(torn_tail).ok());

  SCOPED_TRACE("pre=" + std::to_string(pre) + " interval=" +
               std::to_string(checkpoint_interval) + " crash_after=" +
               std::to_string(crash_after) + " torn=" +
               std::to_string(torn_tail));
  BudgetLedger recovered(root, setup_options);
  auto read = recovered.Read("matrix");
  if (pre == 0 && !read.ok()) {
    // With no prior history the pre-state is "never charged".
    EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  } else {
    EXPECT_TRUE(read.ok()) << read.status().ToString();
    if (read.ok()) {
      const LedgerEntry& entry = read.ValueOrDie();
      EXPECT_TRUE(entry.charges == pre || entry.charges == pre + 1)
          << "recovered " << entry.charges << " charges";
      if (acknowledged) {
        // An acknowledged charge (possible when only the post-append
        // checkpoint crashed) must never be lost.
        EXPECT_EQ(entry.charges, pre + 1);
      }
      EXPECT_DOUBLE_EQ(entry.spent.epsilon, 0.05 * entry.charges);
    }
  }
  // The survivor must be chargeable: recovery left no wedged state.
  BudgetLedger after(root, setup_options);
  auto next = after.Charge("matrix", total, Eps(0.05));
  EXPECT_TRUE(next.ok()) << next.status().ToString();
  return true;
}

TEST(CrashMatrix, EveryBoundaryOfAPlainCharge) {
  for (const bool torn : {false, true}) {
    for (long k = 0; k < 64; ++k) {
      if (!CrashMatrixTrial(/*pre=*/2, /*checkpoint_interval=*/64, k, torn)) {
        ASSERT_GT(k, 0) << "the charge performed no fs operations?";
        break;
      }
    }
  }
}

TEST(CrashMatrix, EveryBoundaryOfTheFirstChargeOfADataset) {
  for (const bool torn : {false, true}) {
    for (long k = 0; k < 64; ++k) {
      if (!CrashMatrixTrial(/*pre=*/0, /*checkpoint_interval=*/64, k, torn)) {
        break;
      }
    }
  }
}

TEST(CrashMatrix, EveryBoundaryOfACheckpointingCharge) {
  // checkpoint_interval 3 makes the third charge compact the WAL into the
  // snapshot: the matrix now crosses WriteViaRename (temp write, fsync,
  // rename, dir fsync) and the WAL truncation, and the acknowledged-charge
  // invariant is load-bearing (the checkpoint crash is swallowed).
  for (const bool torn : {false, true}) {
    for (long k = 0; k < 64; ++k) {
      if (!CrashMatrixTrial(/*pre=*/2, /*checkpoint_interval=*/3, k, torn)) {
        break;
      }
    }
  }
}

// ---- Idempotent charge ids

TEST(BudgetLedgerDurability, RetryingAChargeIdAppliesExactlyOnce) {
  const std::string root = FreshRoot();
  BudgetLedger ledger(root);
  const PrivacyParams total = Eps(1.0);
  ASSERT_TRUE(ledger.Charge("d", total, Eps(0.25), "run-1").ok());
  auto retry = ledger.Charge("d", total, Eps(0.25), "run-1");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.ValueOrDie().charges, 1u);
  EXPECT_DOUBLE_EQ(retry.ValueOrDie().spent.epsilon, 0.25);
}

TEST(BudgetLedgerDurability, IdempotencySurvivesCheckpointCompaction) {
  // With checkpoint_interval 1 every charge is immediately compacted out of
  // the WAL; the dedup window must persist through the snapshot's `recent`
  // list, or a post-checkpoint retry would double-charge.
  const std::string root = FreshRoot();
  LedgerOptions options;
  options.checkpoint_interval = 1;
  BudgetLedger ledger(root, options);
  const PrivacyParams total = Eps(1.0);
  ASSERT_TRUE(ledger.Charge("d", total, Eps(0.25), "run-1").ok());
  // A new instance (a new process) reads the window back from disk.
  BudgetLedger other(root, options);
  auto retry = other.Charge("d", total, Eps(0.25), "run-1");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.ValueOrDie().charges, 1u);
  EXPECT_DOUBLE_EQ(retry.ValueOrDie().spent.epsilon, 0.25);
}

// ---- File locks

TEST(FileLockTest, ExclusiveExcludesAndSharedShares) {
  // flock ownership is per open file description, so a second Acquire in
  // this same process genuinely contends.
  const std::string path = FreshRoot() + "/d.lock";
  FileLockOptions fast;
  fast.timeout_ms = 50;
  auto first = FileLock::Acquire(path, fast);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  FileLock writer_lock = std::move(first).ValueOrDie();
  EXPECT_TRUE(writer_lock.held());

  auto contender = FileLock::Acquire(path, fast);
  ASSERT_FALSE(contender.ok());
  EXPECT_EQ(contender.status().code(), StatusCode::kUnavailable);

  FileLockOptions shared = fast;
  shared.shared = true;
  auto reader = FileLock::Acquire(path, shared);
  ASSERT_FALSE(reader.ok()) << "shared must wait out an exclusive holder";

  writer_lock.Release();
  EXPECT_FALSE(writer_lock.held());
  auto reader1 = FileLock::Acquire(path, shared);
  auto reader2 = FileLock::Acquire(path, shared);
  EXPECT_TRUE(reader1.ok());
  EXPECT_TRUE(reader2.ok()) << "two shared holders must coexist";
  auto writer = FileLock::Acquire(path, fast);
  EXPECT_FALSE(writer.ok()) << "exclusive must wait out shared holders";
}

// ---- Multi-process arbitration (real fork(2)ed writers)

/// Forks a child that performs `attempts` charges of eps `step` against
/// `total` and exits with the number of *accepted* charges; any failure
/// other than a clean ResourceExhausted refusal exits 99. Charges go
/// through a small checkpoint interval so the race also crosses WAL
/// compaction. Returns the child's pid.
pid_t StartCharger(const std::string& root, const PrivacyParams& total,
                   double step, int attempts) {
  fflush(nullptr);  // no duplicated stdio buffers in the child
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  LedgerOptions options;
  options.checkpoint_interval = 4;
  BudgetLedger ledger(root, options);
  int accepted = 0;
  for (int i = 0; i < attempts; ++i) {
    auto charged = ledger.Charge("race", total, Eps(step));
    if (charged.ok()) {
      ++accepted;
    } else if (charged.status().code() != StatusCode::kResourceExhausted) {
      ::_exit(99);
    }
  }
  ::_exit(accepted);
}

/// Waits for a StartCharger child; returns its accepted-charge count.
int JoinCharger(pid_t pid) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : 99;
  EXPECT_NE(code, 99) << "charger hit a non-refusal failure";
  return code;
}

/// Races two forked writer processes, `attempts` charges of eps `step`
/// each, and cross-checks their combined acceptance count against the
/// recovered on-disk state.
void RaceTwoChargers(double total_eps, double step, int attempts,
                     int expect_accepted) {
  const std::string root = FreshRoot();
  const PrivacyParams total = Eps(total_eps);
  const pid_t a = StartCharger(root, total, step, attempts);
  ASSERT_GT(a, 0);
  const pid_t b = StartCharger(root, total, step, attempts);
  ASSERT_GT(b, 0);
  const int accepted = JoinCharger(a) + JoinCharger(b);
  EXPECT_EQ(accepted, expect_accepted);

  BudgetLedger ledger(root);
  auto read = ledger.Read("race");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const LedgerEntry& entry = read.ValueOrDie();
  EXPECT_EQ(entry.charges, static_cast<std::size_t>(accepted))
      << "an accepted charge is missing from (or duplicated in) the ledger";
  EXPECT_NEAR(entry.spent.epsilon, step * accepted, 1e-12);
  EXPECT_FALSE(entry.Overdrawn());
}

TEST(MultiProcess, RacingChargersNeverUnderCount) {
  // Two concurrent writer processes, 25 charges each, all of which fit:
  // every accepted charge must be visible in the recovered sum — a lost
  // update here is a silent privacy violation.
  RaceTwoChargers(/*total_eps=*/0.5, /*step=*/0.01, /*attempts=*/25,
                  /*expect_accepted=*/50);
}

TEST(MultiProcess, RacingChargersSplitACapAndRefuseTheRest) {
  // The budget only fits 30 of the 50 racing charges: the processes must
  // between them land exactly 30, refusing the rest cleanly — never an
  // overdraft, never a refusal while budget remained.
  RaceTwoChargers(/*total_eps=*/0.3, /*step=*/0.01, /*attempts=*/25,
                  /*expect_accepted=*/30);
}

}  // namespace
}  // namespace dpmm
