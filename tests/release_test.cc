// Tests for the release utilities: synthetic-data rounding, budget
// composition and per-query error profiles.
#include <cmath>

#include <gtest/gtest.h>

#include "mechanism/error.h"
#include "mechanism/matrix_mechanism.h"
#include "optimize/eigen_design.h"
#include "release/release.h"
#include "strategy/wavelet.h"
#include "workload/builders.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace release {
namespace {

TEST(NonNegativeIntegral, ClipsAndRounds) {
  linalg::Vector x{-2.5, 1.2, 3.9, 0.4};
  linalg::Vector out = NonNegativeIntegral(x);
  ASSERT_EQ(out.size(), 4u);
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    EXPECT_DOUBLE_EQ(v, std::floor(v));
  }
  // Total preserved: clipped sum = 5.5 -> 6 units.
  EXPECT_DOUBLE_EQ(linalg::SumVec(out), 6.0);
}

TEST(NonNegativeIntegral, LargestRemaindersWin) {
  linalg::Vector x{0.9, 0.1, 0.9, 0.1};  // total 2.0
  linalg::Vector out = NonNegativeIntegral(x);
  EXPECT_EQ(out, (linalg::Vector{1, 0, 1, 0}));
}

TEST(NonNegativeIntegral, IntegralInputUnchanged) {
  linalg::Vector x{3, 0, 7};
  EXPECT_EQ(NonNegativeIntegral(x), x);
}

TEST(SyntheticData, AnswersWorkloadsConsistently) {
  // End to end: a private synthetic dataset answers any query consistently
  // (it is a single nonnegative integral table).
  Domain dom({16});
  AllRangeWorkload w(dom);
  auto design = optimize::EigenDesignForWorkload(w).ValueOrDie();
  auto mech =
      MatrixMechanism::Prepare(design.strategy, {1.0, 1e-4}).ValueOrDie();
  linalg::Vector x(16, 100.0);
  Rng rng(3);
  DataVector synth = SyntheticData(dom, mech.InferX(x, &rng));
  for (double c : synth.counts) {
    EXPECT_GE(c, 0.0);
    EXPECT_DOUBLE_EQ(c, std::floor(c));
  }
  // Large-count queries remain accurate after rounding.
  linalg::Vector est = w.Answer(synth.counts);
  linalg::Vector truth = w.Answer(x);
  EXPECT_NEAR(est.back(), truth.back(), 0.10 * truth.back());
}

TEST(SplitBudget, ProportionalAndExhaustive) {
  PrivacyParams total{1.0, 1e-4};
  auto parts = SplitBudget(total, {1.0, 3.0});
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_NEAR(parts[0].epsilon, 0.25, 1e-12);
  EXPECT_NEAR(parts[1].epsilon, 0.75, 1e-12);
  EXPECT_NEAR(parts[0].delta + parts[1].delta, total.delta, 1e-18);
}

TEST(SplitBudget, RejectsNonPositiveWeights) {
  EXPECT_DEATH(SplitBudget({1.0, 1e-4}, {1.0, 0.0}), "");
}

TEST(QueryErrorProfile, MatchesWorkloadErrorAggregate) {
  // The per-query profile must aggregate to the Prop. 4 workload error.
  auto w = ExplicitWorkload::FromMatrix(builders::Fig1Matrix(), "Fig1");
  Strategy wav = WaveletStrategy(Domain::OneDim(8));
  PrivacyParams privacy{0.5, 1e-4};
  linalg::Vector profile = QueryErrorProfile(w, wav, privacy);
  ASSERT_EQ(profile.size(), 8u);
  double total2 = 0;
  for (double sd : profile) total2 += sd * sd;
  ErrorOptions opts;
  opts.privacy = privacy;
  opts.convention = ErrorConvention::kTotal;
  EXPECT_NEAR(std::sqrt(total2), StrategyError(w, wav, opts),
              1e-6 * std::sqrt(total2));
}

TEST(ReleaseBatch, BitIdenticalToSequentialMechanismAndProfiles) {
  // The release-layer batch API must reproduce, bitwise, what a caller
  // would get from budget-by-budget mechanism preparation: same estimates,
  // same error profiles, same rng state afterwards.
  AllRangeWorkload ranges(Domain({4, 4}));
  auto design = optimize::EigenDesignKronForWorkload(ranges);
  ASSERT_TRUE(design.ok());
  const KronStrategy& strategy = design.ValueOrDie().strategy;

  const std::size_t n = ranges.num_cells();
  linalg::Matrix probe(3, n);
  for (std::size_t j = 0; j < n; ++j) probe(0, j) = 1.0;
  probe(1, 2) = 1.0;
  for (std::size_t j = 0; j < n / 2; ++j) probe(2, j) = 1.0;
  ExplicitWorkload probe_workload(ranges.domain(), probe, "probe");

  linalg::Vector data(n);
  Rng data_rng(15);
  for (auto& v : data) v = static_cast<double>(data_rng.UniformInt(30));
  const std::vector<PrivacyParams> budgets =
      SplitBudget({1.0, 1e-4}, {1.0, 2.0, 1.0, 4.0});

  Rng batch_rng(9);
  const BatchReleaseResult batched =
      ReleaseBatch(strategy, data, budgets, &batch_rng, &probe_workload);
  ASSERT_EQ(batched.x_hats.size(), budgets.size());
  ASSERT_EQ(batched.error_profiles.size(), budgets.size());

  Rng seq_rng(9);
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    auto mech = KronMatrixMechanism::Prepare(strategy, budgets[b]);
    ASSERT_TRUE(mech.ok());
    const linalg::Vector x_hat = mech.ValueOrDie().InferX(data, &seq_rng);
    EXPECT_EQ(batched.x_hats[b], x_hat) << "release " << b;
    EXPECT_EQ(batched.error_profiles[b],
              QueryErrorProfile(probe_workload, strategy, budgets[b]))
        << "profile " << b;
  }
  EXPECT_EQ(batch_rng.NextU64(), seq_rng.NextU64());
}

TEST(QueryErrorProfile, IdentityStrategyGivesRowNorms) {
  // Under the identity strategy, sd_q = sigma * ||w_q||.
  auto w = ExplicitWorkload::FromMatrix(builders::PrefixMatrix1D(6), "prefix");
  Strategy id = IdentityStrategy(6);
  PrivacyParams privacy{1.0, 1e-4};
  const double sigma = GaussianNoiseScale(privacy, 1.0);
  linalg::Vector profile = QueryErrorProfile(w, id, privacy);
  for (std::size_t q = 0; q < 6; ++q) {
    EXPECT_NEAR(profile[q], sigma * std::sqrt(static_cast<double>(q + 1)),
                1e-9);
  }
}

}  // namespace
}  // namespace release
}  // namespace dpmm
