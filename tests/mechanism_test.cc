// Tests for the noise mechanisms, the matrix mechanism, analytic error
// (validated against Monte-Carlo RMSE) and the representation-independence
// properties (Props. 5 and 6).
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "mechanism/bounds.h"
#include "mechanism/error.h"
#include "mechanism/matrix_mechanism.h"
#include "mechanism/noise.h"
#include "optimize/eigen_design.h"
#include "strategy/wavelet.h"
#include "workload/builders.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

using linalg::Matrix;
using linalg::Vector;

constexpr double kEps = 0.5;
constexpr double kDelta = 1e-4;

ErrorOptions PerQuery() {
  ErrorOptions o;
  o.privacy = {kEps, kDelta};
  o.convention = ErrorConvention::kPerQuery;
  return o;
}

TEST(MatrixMechanism, WithPrivacySwapsBudgetWithoutRefactorizing) {
  // The factorization is budget-independent, so a mechanism re-budgeted
  // through WithPrivacy must behave bit-identically to one freshly
  // prepared under the new budget.
  Strategy wav = WaveletStrategy(Domain::OneDim(8));
  auto base = MatrixMechanism::Prepare(wav, {1.0, 1e-4}).ValueOrDie();
  const PrivacyParams tighter{0.25, 1e-5};
  auto fresh = MatrixMechanism::Prepare(wav, tighter).ValueOrDie();
  const MatrixMechanism swapped = base.WithPrivacy(tighter);
  EXPECT_EQ(swapped.noise_scale(), fresh.noise_scale());
  Vector x(8, 25.0);
  Rng rng_a(5), rng_b(5);
  EXPECT_EQ(swapped.InferX(x, &rng_a), fresh.InferX(x, &rng_b));
}

TEST(NoiseScales, GaussianFormula) {
  PrivacyParams p{kEps, kDelta};
  EXPECT_NEAR(GaussianNoiseScale(p, 1.0),
              std::sqrt(2.0 * std::log(2.0 / kDelta)) / kEps, 1e-12);
  // Linear in sensitivity.
  EXPECT_NEAR(GaussianNoiseScale(p, 3.0), 3.0 * GaussianNoiseScale(p, 1.0),
              1e-12);
}

TEST(NoiseScales, LaplaceFormula) {
  EXPECT_DOUBLE_EQ(LaplaceNoiseScale(0.5, 4.0), 8.0);
}

TEST(GaussianMechanism, EmpiricalVarianceMatchesSigma) {
  // One total query over 4 cells: sensitivity 1.
  Matrix w = builders::TotalMatrix(4);
  Vector x{10, 20, 30, 40};
  PrivacyParams p{kEps, kDelta};
  const double sigma = GaussianNoiseScale(p, 1.0);
  Rng rng(17);
  const int trials = 4000;
  double se = 0;
  for (int t = 0; t < trials; ++t) {
    Vector ans = GaussianMechanism(w, x, p, &rng);
    se += (ans[0] - 100.0) * (ans[0] - 100.0);
  }
  EXPECT_NEAR(se / trials, sigma * sigma, 0.08 * sigma * sigma);
}

TEST(LaplaceMechanism, EmpiricalVarianceMatchesScale) {
  Matrix w = builders::TotalMatrix(4);
  Vector x{1, 2, 3, 4};
  Rng rng(23);
  const double b = LaplaceNoiseScale(1.0, 1.0);
  const int trials = 6000;
  double se = 0;
  for (int t = 0; t < trials; ++t) {
    Vector ans = LaplaceMechanism(w, x, 1.0, &rng);
    se += (ans[0] - 10.0) * (ans[0] - 10.0);
  }
  EXPECT_NEAR(se / trials, 2.0 * b * b, 0.15 * 2.0 * b * b);
}

TEST(PFactor, Conventions) {
  ErrorOptions o = PerQuery();
  EXPECT_NEAR(PFactor(o), 2.0 * std::log(2.0 / kDelta) / (kEps * kEps), 1e-12);
  o.convention = ErrorConvention::kLegacyExample4;
  EXPECT_NEAR(PFactor(o), std::log2(2.0 / kDelta) / (kEps * kEps), 1e-12);
}

TEST(StrategyError, ConventionsDifferOnlyBySqrtM) {
  auto w = ExplicitWorkload::FromMatrix(builders::Fig1Matrix(), "Fig1");
  Strategy id = IdentityStrategy(8);
  ErrorOptions per = PerQuery();
  ErrorOptions total = per;
  total.convention = ErrorConvention::kTotal;
  EXPECT_NEAR(StrategyError(w, id, total),
              StrategyError(w, id, per) * std::sqrt(8.0), 1e-9);
}

// The analytic error formula (Prop. 4) must equal the RMSE observed when
// actually running the mechanism.
class AnalyticVsEmpirical : public ::testing::TestWithParam<int> {};

TEST_P(AnalyticVsEmpirical, MatchesMonteCarloRmse) {
  const int which = GetParam();
  Domain dom({16});
  AllRangeWorkload w(dom);
  Strategy strat = (which == 0)   ? IdentityStrategy(16)
                   : (which == 1) ? WaveletStrategy(dom)
                                  : optimize::EigenDesignForWorkload(w)
                                        .ValueOrDie()
                                        .strategy;
  ErrorOptions opts = PerQuery();
  const double analytic = StrategyError(w, strat, opts);

  auto mech = MatrixMechanism::Prepare(strat, opts.privacy).ValueOrDie();
  Vector x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = 10.0 + 3.0 * i;
  const Vector truth = w.Answer(x);
  Rng rng(31 + which);
  const int trials = 300;
  double sse = 0;
  for (int t = 0; t < trials; ++t) {
    Vector est = mech.Run(w, x, &rng);
    for (std::size_t q = 0; q < truth.size(); ++q) {
      sse += (est[q] - truth[q]) * (est[q] - truth[q]);
    }
  }
  const double empirical =
      std::sqrt(sse / (trials * static_cast<double>(truth.size())));
  EXPECT_NEAR(empirical, analytic, 0.05 * analytic);
}

INSTANTIATE_TEST_SUITE_P(Strategies, AnalyticVsEmpirical,
                         ::testing::Values(0, 1, 2));

TEST(MatrixMechanism, AnswersAreConsistent) {
  // q1 = q2 + q3 in Fig. 1; the mechanism's answers must satisfy the same
  // identity exactly because they derive from one x_hat.
  auto w = ExplicitWorkload::FromMatrix(builders::Fig1Matrix(), "Fig1");
  auto mech =
      MatrixMechanism::Prepare(IdentityStrategy(8), {kEps, kDelta}).ValueOrDie();
  Vector x{5, 6, 7, 8, 9, 10, 11, 12};
  Rng rng(41);
  Vector ans = mech.Run(w, x, &rng);
  EXPECT_NEAR(ans[0], ans[1] + ans[2], 1e-9);
  EXPECT_NEAR(ans[7], ans[1] - ans[2], 1e-9);
}

TEST(MatrixMechanism, RankDeficientStrategyUsesPseudoInverse) {
  // A rank-deficient strategy is legal for workloads inside its row space
  // (the paper's Fig. 2 adaptive output is rank deficient). Answers must be
  // unbiased for such workloads.
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}});
  auto mech =
      MatrixMechanism::Prepare(Strategy(a, "rank1"), {kEps, kDelta}).ValueOrDie();
  EXPECT_FALSE(mech.full_rank());
  auto w = ExplicitWorkload::FromMatrix(Matrix::FromRows({{3, 3}}), "in-span");
  Vector x{10, 20};
  Rng rng(71);
  const int trials = 4000;
  double mean = 0;
  for (int t = 0; t < trials; ++t) mean += mech.Run(w, x, &rng)[0];
  mean /= trials;
  EXPECT_NEAR(mean, 90.0, 3.0);
}

TEST(MatrixMechanism, UnbiasedEstimates) {
  Domain dom({8});
  AllRangeWorkload w(dom);
  auto mech =
      MatrixMechanism::Prepare(WaveletStrategy(dom), {kEps, kDelta}).ValueOrDie();
  Vector x{1, 2, 3, 4, 5, 6, 7, 8};
  const Vector truth = w.Answer(x);
  Rng rng(43);
  Vector mean(truth.size(), 0.0);
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Vector est = mech.Run(w, x, &rng);
    for (std::size_t q = 0; q < est.size(); ++q) mean[q] += est[q];
  }
  const double sigma = mech.noise_scale();
  for (std::size_t q = 0; q < mean.size(); ++q) {
    EXPECT_NEAR(mean[q] / trials, truth[q], 5.0 * sigma / std::sqrt(1.0 * trials) + 0.5);
  }
}

TEST(MatrixMechanism, LaplaceNoiseMatchesAnalyticError) {
  // The eps-matrix mechanism (Sec. 3.5): empirical RMSE must match the
  // L1-sensitivity error formula.
  Domain dom({12});
  AllRangeWorkload w(dom);
  Strategy strat = WaveletStrategy(dom);
  const double eps = 1.0;
  const double analytic = LaplaceStrategyError(
      w.Gram(), w.num_queries(), strat, eps, ErrorConvention::kPerQuery);
  auto mech = MatrixMechanism::Prepare(strat, {eps, 0.0},
                                       MatrixMechanism::NoiseKind::kLaplace)
                  .ValueOrDie();
  Vector x(12, 40.0);
  const Vector truth = w.Answer(x);
  Rng rng(61);
  const int trials = 400;
  double sse = 0;
  for (int t = 0; t < trials; ++t) {
    Vector est = mech.Run(w, x, &rng);
    for (std::size_t q = 0; q < truth.size(); ++q) {
      sse += (est[q] - truth[q]) * (est[q] - truth[q]);
    }
  }
  const double empirical =
      std::sqrt(sse / (trials * static_cast<double>(truth.size())));
  EXPECT_NEAR(empirical, analytic, 0.08 * analytic);
}

TEST(GaussianBaseline, MatchesClosedForm) {
  auto w = ExplicitWorkload::FromMatrix(builders::Fig1Matrix(), "Fig1");
  ErrorOptions per = PerQuery();
  EXPECT_NEAR(GaussianBaselineError(w, per),
              std::sqrt(5.0 * PFactor(per)), 1e-9);
}

TEST(Prop5, SemanticEquivalenceOfEigenDesign) {
  // Permuting cell conditions must leave the eigen-design error unchanged.
  Domain dom({32});
  auto base = std::make_shared<AllRangeWorkload>(dom);
  Rng rng(47);
  PermutedWorkload permuted(base, rng.Permutation(32));
  ErrorOptions opts = PerQuery();

  auto d1 = optimize::EigenDesignForWorkload(*base).ValueOrDie();
  auto d2 = optimize::EigenDesignForWorkload(permuted).ValueOrDie();
  const double e1 = StrategyError(*base, d1.strategy, opts);
  const double e2 = StrategyError(permuted, d2.strategy, opts);
  EXPECT_NEAR(e1, e2, 2e-3 * e1);
}

TEST(Prop6, ErrorEquivalentWorkloads) {
  // W and QW for orthogonal Q have identical error under any strategy.
  Matrix w = builders::PrefixMatrix1D(8);
  // Orthogonal Q: eigenvectors of a symmetric matrix.
  Rng rng(53);
  Matrix sym(8, 8);
  for (int i = 0; i < 8; ++i) {
    for (int j = i; j < 8; ++j) {
      sym(i, j) = rng.Gaussian();
      sym(j, i) = sym(i, j);
    }
  }
  Matrix q = linalg::SymmetricEigen(sym).ValueOrDie().vectors;
  Matrix qw = linalg::MatMul(q, w);

  auto w1 = ExplicitWorkload::FromMatrix(w, "W");
  auto w2 = ExplicitWorkload::FromMatrix(qw, "QW");
  ErrorOptions opts = PerQuery();
  Strategy wav = WaveletStrategy(Domain::OneDim(8));
  EXPECT_NEAR(StrategyError(w1, wav, opts), StrategyError(w2, wav, opts),
              1e-8);
  auto d1 = optimize::EigenDesignForWorkload(w1).ValueOrDie();
  auto d2 = optimize::EigenDesignForWorkload(w2).ValueOrDie();
  EXPECT_NEAR(StrategyError(w1, d1.strategy, opts),
              StrategyError(w2, d2.strategy, opts), 1e-4);
}

TEST(RelativeError, DecreasesWithEpsilon) {
  Domain dom({16});
  AllRangeWorkload w(dom);
  DataVector data(dom, Vector(16, 500.0));
  RelativeErrorOptions ropts;
  ropts.trials = 10;
  auto strat = WaveletStrategy(dom);
  auto loose = MatrixMechanism::Prepare(strat, {0.1, kDelta}).ValueOrDie();
  auto tight = MatrixMechanism::Prepare(strat, {2.5, kDelta}).ValueOrDie();
  const double e_loose = MeanRelativeError(w, loose, data, ropts);
  const double e_tight = MeanRelativeError(w, tight, data, ropts);
  EXPECT_GT(e_loose, e_tight);
  EXPECT_GT(e_tight, 0.0);
}

TEST(RelativeError, DeterministicForSeed) {
  Domain dom({8});
  AllRangeWorkload w(dom);
  DataVector data(dom, Vector(8, 100.0));
  auto mech =
      MatrixMechanism::Prepare(IdentityStrategy(8), {kEps, kDelta}).ValueOrDie();
  RelativeErrorOptions ropts;
  ropts.trials = 5;
  EXPECT_DOUBLE_EQ(MeanRelativeError(w, mech, data, ropts),
                   MeanRelativeError(w, mech, data, ropts));
}

}  // namespace
}  // namespace dpmm
