// Tests for Status/Result, the RNG and samplers, threading and the table
// printer.
#include <cmath>
#include <memory>
#include <mutex>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/threading.h"

namespace dpmm {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 42);
  Result<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

// util::Status is a [[nodiscard]] class (build-enforced with -Werror): a
// dropped ledger charge / WAL append / fsync result is a compile error.
// These tests pin the two sanctioned consumption idioms at runtime.
TEST(Status, IgnoreStatusMacroSwallowsErrorsInExpressionPosition) {
  bool ran = false;
  auto fail = [&]() {
    ran = true;
    return Status::IoError("deliberately dropped");
  };
  // Compiles without -Wunused-result noise, evaluates the expression
  // exactly once, and discards the error.
  DPMM_IGNORE_STATUS(fail(), "unit test: exercising the discard macro");
  EXPECT_TRUE(ran);
}

TEST(Status, IgnoreStatusMacroAcceptsOkToo) {
  DPMM_IGNORE_STATUS(Status::OK(), "unit test: OK discard is also fine");
}

// DPMM_DCHECK is the hot-path check variant: active whenever NDEBUG is off
// (Debug + all sanitizer lanes), compiled out in the default Release build
// so linalg kernels pay nothing. The conversion of the kernels from
// DPMM_CHECK changed observable Release behavior (no abort on bad shapes),
// so both sides are pinned here.
TEST(Logging, DcheckCompiledPerBuildType) {
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return true;
  };
#ifdef NDEBUG
  // Release: the condition must not even be evaluated.
  DPMM_DCHECK(count());
  DPMM_DCHECK_MSG(count(), "unused");
  EXPECT_EQ(evaluations, 0);
#else
  DPMM_DCHECK(count());
  EXPECT_EQ(evaluations, 1);
  EXPECT_DEATH(DPMM_DCHECK(false), "DPMM_CHECK failed");
#endif
}

TEST(Rng, EntropySeedIsUniquePerCall) {
  // GenerateChargeId's process tag comes from here: a collision between two
  // processes would make the ledger's idempotency window treat a fresh
  // charge as a retry and silently drop it — budget under-count, i.e. a
  // privacy bug. 64-bit draws over 4k calls must never repeat.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4096; ++i) seen.insert(EntropySeed());
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(Rng, UniformDoubleInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, GaussianMoments) {
  Rng rng(3);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScale) {
  Rng rng(4);
  const int n = 100000;
  double sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(5.0);
    sum2 += g * g;
  }
  EXPECT_NEAR(sum2 / n, 25.0, 0.8);
}

TEST(Rng, LaplaceMoments) {
  Rng rng(5);
  const int n = 200000;
  const double b = 2.0;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double l = rng.Laplace(b);
    sum += l;
    sum2 += l * l;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 2.0 * b * b, 0.25);  // Var = 2 b^2
}

TEST(Rng, VectorsHaveRequestedLength) {
  Rng rng(6);
  EXPECT_EQ(rng.GaussianVector(17, 1.0).size(), 17u);
  EXPECT_EQ(rng.LaplaceVector(9, 1.0).size(), 9u);
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(7);
  auto p = rng.Permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<int> hits(1000, 0);
  std::mutex mu;
  ParallelFor(0, 1000, 10, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int calls = 0;
  ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(3, 0);
  ParallelFor(0, 3, 100, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, ZeroGrainAndInvertedRange) {
  // Grain 0 means "no minimum" and must not underflow the chunk arithmetic.
  std::vector<int> hits(64, 0);
  std::mutex mu;
  ParallelFor(0, 64, 0, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (int h : hits) ASSERT_EQ(h, 1);
  // end < begin is an empty range, not a wraparound.
  int calls = 0;
  ParallelFor(10, 2, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, GrainEqualToRangeRunsSerially) {
  // One grain covers everything: the callback must run exactly once, inline.
  int calls = 0;
  ParallelFor(3, 11, 8, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 3u);
    EXPECT_EQ(hi, 11u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Num(std::nan(""), 2), "-");
  // Very large/small numbers switch to scientific notation.
  EXPECT_NE(TablePrinter::Num(1.5e7, 2).find("e"), std::string::npos);
}

TEST(TablePrinter, PrintsAllRows) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  ::testing::internal::CaptureStdout();
  t.Print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("| a"), std::string::npos);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  EXPECT_GE(sw.Seconds(), 0.0);
  sw.Restart();
  EXPECT_GE(sw.Millis(), 0.0);
}

}  // namespace
}  // namespace dpmm
