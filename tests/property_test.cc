// Cross-module randomized property tests: invariants that must hold for
// arbitrary workloads and strategies, not just the structured cases the
// other suites pin down.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "linalg/blas.h"
#include "linalg/kronecker.h"
#include "mechanism/bounds.h"
#include "mechanism/error.h"
#include "mechanism/matrix_mechanism.h"
#include "optimize/eigen_design.h"
#include "util/rng.h"
#include "workload/builders.h"
#include "workload/range_workloads.h"

namespace dpmm {
namespace {

using linalg::Matrix;
using linalg::Vector;

ErrorOptions Opts() {
  ErrorOptions o;
  o.privacy = {0.5, 1e-4};
  return o;
}

Matrix RandomMatrix(std::size_t r, std::size_t c, Rng* rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng->Gaussian();
  }
  return m;
}

class Seeds : public ::testing::TestWithParam<int> {};

TEST_P(Seeds, ErrorScalesLinearlyWithWorkload) {
  // Error(k W) = k * Error(W): the trace term scales with k^2 and the
  // strategy is unchanged.
  Rng rng(GetParam());
  Matrix w = RandomMatrix(10, 12, &rng);
  Matrix w3 = w;
  w3.Scale(3.0);
  auto wl = ExplicitWorkload::FromMatrix(w, "w");
  auto wl3 = ExplicitWorkload::FromMatrix(w3, "3w");
  Strategy id = IdentityStrategy(12);
  ErrorOptions opts = Opts();
  EXPECT_NEAR(StrategyError(wl3, id, opts), 3.0 * StrategyError(wl, id, opts),
              1e-9);
  // And the lower bound scales identically (svdb is quadratic in W).
  EXPECT_NEAR(SvdErrorLowerBound(wl3.Gram(), 10, opts),
              3.0 * SvdErrorLowerBound(wl.Gram(), 10, opts),
              1e-7 * SvdErrorLowerBound(wl3.Gram(), 10, opts));
}

TEST_P(Seeds, ErrorInvariantUnderStrategyScaling) {
  // Scaling a strategy rescales noise and inference identically: error of
  // answering any workload is unchanged.
  Rng rng(GetParam() + 100);
  Matrix w = RandomMatrix(8, 10, &rng);
  auto wl = ExplicitWorkload::FromMatrix(w, "w");
  Matrix a = RandomMatrix(14, 10, &rng);
  Matrix a5 = a;
  a5.Scale(5.0);
  ErrorOptions opts = Opts();
  EXPECT_NEAR(StrategyError(wl, Strategy(a, "a"), opts),
              StrategyError(wl, Strategy(a5, "5a"), opts), 1e-8);
}

TEST_P(Seeds, BoundDominatesRandomStrategies) {
  // Thm. 2 holds for arbitrary (not just designed) full-rank strategies.
  Rng rng(GetParam() + 200);
  Matrix w = RandomMatrix(12, 9, &rng);
  auto wl = ExplicitWorkload::FromMatrix(w, "w");
  ErrorOptions opts = Opts();
  const double bound = SvdErrorLowerBound(wl.Gram(), 12, opts);
  for (int t = 0; t < 3; ++t) {
    Matrix a = RandomMatrix(15, 9, &rng);
    EXPECT_GE(StrategyError(wl, Strategy(a, "rand"), opts),
              bound * (1 - 1e-9));
  }
}

TEST_P(Seeds, GramOfKroneckerIsKroneckerOfGrams) {
  Rng rng(GetParam() + 300);
  Matrix a = RandomMatrix(5, 3, &rng);
  Matrix b = RandomMatrix(4, 6, &rng);
  Matrix lhs = linalg::Gram(linalg::Kron(a, b));
  Matrix rhs = linalg::Kron(linalg::Gram(a), linalg::Gram(b));
  EXPECT_LT(lhs.MaxAbsDiff(rhs), 1e-9);
}

TEST_P(Seeds, SensitivityOfKroneckerIsProduct) {
  Rng rng(GetParam() + 400);
  Matrix a = RandomMatrix(5, 3, &rng);
  Matrix b = RandomMatrix(4, 6, &rng);
  EXPECT_NEAR(linalg::Kron(a, b).MaxColNorm(),
              a.MaxColNorm() * b.MaxColNorm(), 1e-9);
  EXPECT_NEAR(linalg::Kron(a, b).MaxColAbsSum(),
              a.MaxColAbsSum() * b.MaxColAbsSum(), 1e-9);
}

TEST_P(Seeds, EigenDesignInvariantUnderWorkloadRotation) {
  // Prop. 6 for arbitrary random workloads: QW has the same design error.
  Rng rng(GetParam() + 500);
  Matrix w = RandomMatrix(9, 9, &rng);
  // Orthogonal Q from an eigendecomposition.
  Matrix sym(9, 9);
  for (int i = 0; i < 9; ++i) {
    for (int j = i; j < 9; ++j) {
      sym(i, j) = rng.Gaussian();
      sym(j, i) = sym(i, j);
    }
  }
  Matrix q = linalg::SymmetricEigen(sym).ValueOrDie().vectors;
  auto w1 = ExplicitWorkload::FromMatrix(w, "w");
  auto w2 = ExplicitWorkload::FromMatrix(linalg::MatMul(q, w), "qw");
  ErrorOptions opts = Opts();
  auto d1 = optimize::EigenDesign(w1.Gram()).ValueOrDie();
  auto d2 = optimize::EigenDesign(w2.Gram()).ValueOrDie();
  const double e1 = StrategyError(w1, d1.strategy, opts);
  const double e2 = StrategyError(w2, d2.strategy, opts);
  EXPECT_NEAR(e1, e2, 2e-3 * e1);
}

TEST_P(Seeds, MechanismVarianceMatchesProfileForRandomStrategy) {
  // For a random full-rank strategy, empirical per-query variances agree
  // with the analytic trace formula in aggregate.
  Rng rng(GetParam() + 600);
  Domain dom({6});
  AllRangeWorkload w(dom);
  Matrix a = RandomMatrix(8, 6, &rng);
  for (int i = 0; i < 6; ++i) a(i, i) += 2.0;  // ensure full rank
  Strategy strat(a, "rand");
  ErrorOptions opts = Opts();
  const double analytic = StrategyError(w, strat, opts);
  auto mech = MatrixMechanism::Prepare(strat, opts.privacy).ValueOrDie();
  Vector x(6, 25.0);
  const Vector truth = w.Answer(x);
  Rng noise(GetParam() + 700);
  const int trials = 500;
  double sse = 0;
  for (int t = 0; t < trials; ++t) {
    Vector est = mech.Run(w, x, &noise);
    for (std::size_t qi = 0; qi < truth.size(); ++qi) {
      sse += (est[qi] - truth[qi]) * (est[qi] - truth[qi]);
    }
  }
  const double empirical =
      std::sqrt(sse / (trials * static_cast<double>(truth.size())));
  EXPECT_NEAR(empirical, analytic, 0.12 * analytic);
}

TEST_P(Seeds, StackedGramEqualsConcatenatedGram) {
  Rng rng(GetParam() + 800);
  Matrix wa = RandomMatrix(6, 8, &rng);
  Matrix wb = RandomMatrix(4, 8, &rng);
  auto a = std::make_shared<ExplicitWorkload>(
      ExplicitWorkload::FromMatrix(wa, "a"));
  auto b = std::make_shared<ExplicitWorkload>(
      ExplicitWorkload::FromMatrix(wb, "b"));
  StackedWorkload stacked({a, b}, "ab");
  Matrix concat = wa.VStack(wb);
  EXPECT_LT(stacked.Gram().MaxAbsDiff(linalg::Gram(concat)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, Seeds, ::testing::Range(1, 7));

}  // namespace
}  // namespace dpmm
