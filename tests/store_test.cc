// Tests for the generation-based storage engine: consistent-hash shard
// placement, flat-v1 read-through migration and its byte-identical
// compaction, supersession and tombstone lifecycles at the 1000-release
// scale, adoption of manifest-unknown files, and the bounded LRU caches
// (store loads and the answer engine's root cache) — including eviction
// churn under concurrent readers, which is why this suite runs in the TSan
// CI pass.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "query/predicate.h"
#include "serialize/artifact.h"
#include "serve/answer_engine.h"
#include "serve/store.h"
#include "serve/store_layout.h"
#include "strategy/strategy.h"
#include "util/lru_cache.h"

namespace dpmm {
namespace {

using serialize::EncodeReleaseArtifact;
using serialize::EncodeStrategyArtifact;
using serialize::ReleaseArtifact;
using serialize::StrategyArtifact;
using serve::AnswerEngine;
using serve::CompactStore;
using serve::ReleaseStore;
using serve::StatStore;
using serve::StoreLayout;
using serve::StoreOptions;
using serve::StoreStat;
using serve::StrategyStore;

std::string FreshRoot() {
  std::string tmpl = ::testing::TempDir() + "/dpmm_store_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// The release filename the store uses (store.cc IdName).
std::string IdFile(std::size_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06zu.release", id);
  return buf;
}

/// A minimal decodable strategy artifact: the identity strategy over the
/// domain, dense engine. Cheap enough to mint hundreds of them — these
/// tests exercise the storage engine, not the design layer.
std::shared_ptr<const StrategyArtifact> IdentityArtifact(
    const std::string& spec, const Domain& domain) {
  auto artifact = std::make_shared<StrategyArtifact>();
  artifact->signature = serve::CanonicalSignature(spec, domain);
  artifact->domain_sizes = domain.sizes();
  artifact->strategy =
      std::make_shared<Strategy>(IdentityStrategy(domain.NumCells()));
  artifact->rank = domain.NumCells();
  return artifact;
}

/// A minimal decodable release: x_hat[c] = fill + c, so every release in a
/// test carries distinguishable (and exactly reproducible) bytes.
ReleaseArtifact SampleRelease(const std::string& signature,
                              const Domain& domain, const std::string& dataset,
                              std::uint64_t batch_index, double fill) {
  ReleaseArtifact rel;
  rel.signature = signature;
  rel.domain_sizes = domain.sizes();
  rel.budget = {0.1, 1e-5};
  rel.dataset = dataset;
  rel.seed = 1;
  rel.batch_index = batch_index;
  rel.x_hat.resize(domain.NumCells());
  for (std::size_t c = 0; c < rel.x_hat.size(); ++c) {
    rel.x_hat[c] = fill + static_cast<double>(c);
  }
  return rel;
}

struct StatTotals {
  std::size_t strategies = 0;
  std::size_t live = 0;
  std::size_t superseded = 0;
  std::size_t tombstoned = 0;
  std::size_t unmanifested = 0;
};

StatTotals Sum(const StoreStat& stat) {
  StatTotals t;
  for (const auto& shard : stat.shards) {
    t.strategies += shard.strategies;
    t.live += shard.live;
    t.superseded += shard.superseded;
    t.tombstoned += shard.tombstoned;
    t.unmanifested += shard.unmanifested;
  }
  return t;
}

// ---- Layout: consistent-hash placement

TEST(StoreLayoutTest, RingCoversEveryShardAndPlacementIsStable) {
  const std::string root = FreshRoot();
  auto resolved = StoreLayout::Resolve(root, 4);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  const StoreLayout& layout = resolved.ValueOrDie();
  ASSERT_TRUE(layout.sharded());
  EXPECT_EQ(layout.num_shards(), 4u);

  std::set<std::size_t> hit;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = serve::StoreKey("sig-" + std::to_string(i));
    const std::size_t shard = layout.ShardOf(key);
    ASSERT_LT(shard, 4u);
    // Placement is a pure function of the key.
    EXPECT_EQ(layout.ShardOf(key), shard);
    hit.insert(shard);
  }
  // 1000 keys on a 64-point ring: every shard owns a non-trivial arc.
  EXPECT_EQ(hit.size(), 4u);
}

TEST(StoreLayoutTest, GrowthRehomesOnlyAFractionOfKeys) {
  // The consistent-hashing contract: growing 4 -> 5 shards moves roughly
  // 1/5 of the keys, not all of them (naive modulo would move ~4/5).
  const StoreLayout four =
      StoreLayout::Resolve(FreshRoot(), 4).ValueOrDie();
  const StoreLayout five =
      StoreLayout::Resolve(FreshRoot(), 5).ValueOrDie();
  int moved = 0;
  const int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = serve::StoreKey("sig-" + std::to_string(i));
    if (four.ShardOf(key) != five.ShardOf(key)) ++moved;
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 2) << "growth re-homed " << moved << " of "
                              << kKeys << " keys — that is a rehash, not a "
                              << "consistent-hash migration";
}

// ---- Flat v1 compatibility

TEST(ShardedStore, FlatStoreStaysFlatByDefault) {
  const std::string root = FreshRoot();
  const Domain domain({2, 4});
  auto strategy = IdentityArtifact("flat", domain);
  StrategyStore sstore(root);
  ASSERT_TRUE(sstore.Put(*strategy).ok());
  ReleaseStore rstore(root);
  ASSERT_TRUE(
      rstore.Put(SampleRelease(strategy->signature, domain, "d", 0, 1.0))
          .ok());

  // No store.layout, no shard dirs: the v1 on-disk contract, untouched.
  EXPECT_FALSE(FileExists(root + "/store.layout"));
  EXPECT_FALSE(FileExists(root + "/shard-0"));
  const std::string key = serve::StoreKey(strategy->signature);
  EXPECT_TRUE(FileExists(root + "/strategies/" + key + ".strategy"));
  EXPECT_TRUE(FileExists(root + "/releases/" + key + "/" + IdFile(0)));

  auto stat = StatStore(root);
  ASSERT_TRUE(stat.ok()) << stat.status().ToString();
  EXPECT_FALSE(stat.ValueOrDie().sharded);
  EXPECT_EQ(stat.ValueOrDie().flat_strategies, 1u);
  EXPECT_EQ(stat.ValueOrDie().flat_releases, 1u);

  // Compacting a flat store needs an explicit shard count to upgrade to.
  auto refused = CompactStore(root);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedStore, FlatV1MigratesReadThroughThenByteIdenticalCompaction) {
  const std::string root = FreshRoot();
  const Domain domain({2, 4});
  auto strategy = IdentityArtifact("mig", domain);
  const std::string sig = strategy->signature;
  const std::string key = serve::StoreKey(sig);

  // A pure v1 store: one strategy, three releases.
  {
    StrategyStore sstore(root);
    ASSERT_TRUE(sstore.Put(*strategy).ok());
    ReleaseStore rstore(root);
    for (std::uint64_t b = 0; b < 3; ++b) {
      auto id = rstore.Put(SampleRelease(sig, domain, "d", b, 10.0 * b));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      EXPECT_EQ(id.ValueOrDie(), b);
    }
  }
  const std::string flat_strategy_bytes =
      ReadFileBytes(root + "/strategies/" + key + ".strategy");
  std::vector<std::string> flat_release_bytes;
  for (std::size_t id = 0; id < 3; ++id) {
    flat_release_bytes.push_back(
        ReadFileBytes(root + "/releases/" + key + "/" + IdFile(id)));
    ASSERT_FALSE(flat_release_bytes.back().empty());
  }

  // Open sharded: every flat artifact is served through the fall-through
  // paths, untouched on disk.
  StoreOptions sharded;
  sharded.shards = 4;
  StrategyStore sstore(root, sharded);
  EXPECT_TRUE(sstore.Contains(sig));
  auto got = sstore.Get(sig);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(EncodeStrategyArtifact(*got.ValueOrDie()), flat_strategy_bytes);

  ReleaseStore rstore(root, sharded);
  EXPECT_EQ(rstore.List(sig), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(rstore.LatestId(sig).ValueOrDie(), 2u);
  for (std::size_t id = 0; id < 3; ++id) {
    auto rel = rstore.Get(sig, id);
    ASSERT_TRUE(rel.ok()) << rel.status().ToString();
    EXPECT_EQ(EncodeReleaseArtifact(*rel.ValueOrDie()),
              flat_release_bytes[id]);
  }

  // A new write lands sharded, with the id sequence continuing past the
  // flat history (ids are never reused across the migration).
  auto put = rstore.Put(SampleRelease(sig, domain, "d", 3, 30.0));
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_EQ(put.ValueOrDie(), 3u);
  ASSERT_TRUE(FileExists(root + "/store.layout"));

  const StoreLayout layout = StoreLayout::Resolve(root, 0).ValueOrDie();
  ASSERT_TRUE(layout.sharded());
  EXPECT_TRUE(layout.migrating());
  EXPECT_TRUE(FileExists(layout.ReleaseDir(key) + "/" + IdFile(3)));
  const std::string sharded_release_bytes =
      ReadFileBytes(layout.ReleaseDir(key) + "/" + IdFile(3));

  auto stat = StatStore(root);
  ASSERT_TRUE(stat.ok()) << stat.status().ToString();
  EXPECT_TRUE(stat.ValueOrDie().sharded);
  EXPECT_TRUE(stat.ValueOrDie().migrating);
  EXPECT_EQ(stat.ValueOrDie().num_shards, 4u);
  EXPECT_EQ(stat.ValueOrDie().flat_strategies, 1u);
  EXPECT_EQ(stat.ValueOrDie().flat_releases, 3u);

  // Compaction re-homes the flat history byte-verbatim and removes the
  // originals; nothing was superseded, so nothing live is lost.
  auto report = CompactStore(root);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.ValueOrDie().shards_compacted, 4u);
  EXPECT_EQ(report.ValueOrDie().flat_migrated, 4u);  // 1 strategy + 3 releases
  EXPECT_EQ(report.ValueOrDie().files_removed, 4u);  // the 4 flat originals
  EXPECT_EQ(report.ValueOrDie().live_kept, 4u);

  EXPECT_FALSE(FileExists(root + "/strategies/" + key + ".strategy"));
  for (std::size_t id = 0; id < 3; ++id) {
    EXPECT_FALSE(FileExists(root + "/releases/" + key + "/" + IdFile(id)));
  }
  EXPECT_EQ(ReadFileBytes(layout.StrategyPath(key)), flat_strategy_bytes);
  for (std::size_t id = 0; id < 3; ++id) {
    EXPECT_EQ(ReadFileBytes(layout.ReleaseDir(key) + "/" + IdFile(id)),
              flat_release_bytes[id]);
  }
  EXPECT_EQ(ReadFileBytes(layout.ReleaseDir(key) + "/" + IdFile(3)),
            sharded_release_bytes);

  // A fresh open (no explicit shard request: store.layout pins it) serves
  // the full migrated history.
  StrategyStore sstore2(root);
  EXPECT_TRUE(sstore2.Get(sig).ok());
  ReleaseStore rstore2(root);
  EXPECT_EQ(rstore2.List(sig), (std::vector<std::size_t>{0, 1, 2, 3}));
  for (std::size_t id = 0; id < 4; ++id) {
    EXPECT_TRUE(rstore2.Get(sig, id).ok()) << "id " << id;
  }
  auto after = StatStore(root);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.ValueOrDie().migrating);
  EXPECT_EQ(after.ValueOrDie().flat_strategies, 0u);
  EXPECT_EQ(after.ValueOrDie().flat_releases, 0u);
  EXPECT_EQ(Sum(after.ValueOrDie()).live, 4u);
  EXPECT_EQ(Sum(after.ValueOrDie()).strategies, 1u);
}

TEST(ShardedStore, ConflictingPinnedShardCountIsRefused) {
  const std::string root = FreshRoot();
  const Domain domain({2, 4});
  auto strategy = IdentityArtifact("pin", domain);
  StoreOptions four;
  four.shards = 4;
  {
    StrategyStore sstore(root, four);
    ASSERT_TRUE(sstore.Put(*strategy).ok());  // persists store.layout
  }

  StoreOptions two;
  two.shards = 2;
  StrategyStore wrong(root, two);
  auto put = wrong.Put(*strategy);
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(put.code(), StatusCode::kInvalidArgument);
  auto get = wrong.Get(strategy->signature);
  ASSERT_FALSE(get.ok());
  EXPECT_EQ(get.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(StatStore(root, two).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CompactStore(root, two).status().code(),
            StatusCode::kInvalidArgument);

  // Re-stating the pinned count (or stating none) is fine.
  EXPECT_TRUE(StatStore(root, four).ok());
  EXPECT_TRUE(StatStore(root).ok());
  StrategyStore agreed(root, four);
  EXPECT_TRUE(agreed.Get(strategy->signature).ok());
}

// ---- Supersession and compaction at scale

TEST(ShardedStore, ThousandReleasesNinetyPercentSupersededCompactToLiveSet) {
  const std::string root = FreshRoot();
  const Domain domain({2, 4});
  StoreOptions options;
  options.shards = 4;

  constexpr std::size_t kSignatures = 4;
  constexpr std::size_t kDatasets = 25;
  constexpr std::size_t kGenerations = 10;

  std::vector<std::string> sigs;
  {
    StrategyStore sstore(root, options);
    for (std::size_t s = 0; s < kSignatures; ++s) {
      auto strategy = IdentityArtifact("w" + std::to_string(s), domain);
      ASSERT_TRUE(sstore.Put(*strategy).ok());
      sigs.push_back(strategy->signature);
    }
  }

  // 4 signatures x 25 datasets x 10 generations = 1000 releases; within a
  // (signature, dataset, batch-slot) only the last generation stays live.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> live_id;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> prev_id;
  std::map<std::pair<std::size_t, std::size_t>, double> live_fill;
  {
    ReleaseStore rstore(root, options);
    for (std::size_t s = 0; s < kSignatures; ++s) {
      for (std::size_t d = 0; d < kDatasets; ++d) {
        for (std::size_t g = 0; g < kGenerations; ++g) {
          const double fill = static_cast<double>(10000 * s + 100 * d + g);
          auto id = rstore.Put(SampleRelease(
              sigs[s], domain, "ds" + std::to_string(d), 0, fill));
          ASSERT_TRUE(id.ok()) << id.status().ToString();
          if (g + 1 == kGenerations) {
            prev_id[{s, d}] = live_id[{s, d}];
          }
          live_id[{s, d}] = id.ValueOrDie();
          live_fill[{s, d}] = fill;
        }
      }
    }

    // The stored artifact is self-describing: the last generation records
    // which id it superseded.
    const std::size_t superseded_id = prev_id[{0, 0}];
    auto last = rstore.Get(sigs[0], live_id[{0, 0}]);
    ASSERT_TRUE(last.ok()) << last.status().ToString();
    ASSERT_TRUE(last.ValueOrDie()->has_supersedes());
    EXPECT_EQ(last.ValueOrDie()->supersedes(), superseded_id);
  }

  auto stat = StatStore(root);
  ASSERT_TRUE(stat.ok()) << stat.status().ToString();
  StatTotals before = Sum(stat.ValueOrDie());
  EXPECT_EQ(before.strategies, kSignatures);
  EXPECT_EQ(before.live, 100u);
  EXPECT_EQ(before.superseded, 900u);
  EXPECT_EQ(before.tombstoned, 0u);
  EXPECT_EQ(before.unmanifested, 0u);

  auto report = CompactStore(root);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.ValueOrDie().files_removed, 900u);
  EXPECT_EQ(report.ValueOrDie().live_kept, 100u);
  EXPECT_EQ(report.ValueOrDie().flat_migrated, 0u);
  EXPECT_EQ(report.ValueOrDie().shards_compacted, 4u);

  // Zero lost live artifacts: every slot's last generation is still served
  // with its exact payload; the superseded files are gone.
  ReleaseStore rstore(root);
  for (std::size_t s = 0; s < kSignatures; ++s) {
    EXPECT_EQ(rstore.List(sigs[s]).size(), kDatasets) << "signature " << s;
    for (std::size_t d = 0; d < kDatasets; ++d) {
      const double expected_fill = live_fill[{s, d}];
      auto rel = rstore.Get(sigs[s], live_id[{s, d}]);
      ASSERT_TRUE(rel.ok()) << "s=" << s << " d=" << d << " "
                            << rel.status().ToString();
      EXPECT_EQ(rel.ValueOrDie()->x_hat[0], expected_fill);
    }
  }
  EXPECT_EQ(rstore.Get(sigs[0], prev_id[{0, 0}]).status().code(),
            StatusCode::kNotFound);

  auto after = StatStore(root);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Sum(after.ValueOrDie()).live, 100u);
  EXPECT_EQ(Sum(after.ValueOrDie()).superseded, 0u);

  // Compaction is idempotent: a second pass finds nothing to do.
  auto again = CompactStore(root);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.ValueOrDie().files_removed, 0u);
  EXPECT_EQ(again.ValueOrDie().flat_migrated, 0u);
  EXPECT_EQ(again.ValueOrDie().live_kept, 100u);
}

// ---- Tombstones

TEST(ShardedStore, TombstoneLifecycle) {
  const std::string root = FreshRoot();
  const Domain domain({2, 4});
  auto strategy = IdentityArtifact("tomb", domain);
  const std::string sig = strategy->signature;
  StoreOptions options;
  options.shards = 2;

  StrategyStore sstore(root, options);
  ASSERT_TRUE(sstore.Put(*strategy).ok());
  ReleaseStore rstore(root, options);
  for (std::uint64_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(rstore.Put(SampleRelease(sig, domain, "d", b, 5.0 * b)).ok());
  }

  ASSERT_TRUE(rstore.Tombstone(sig, 1).ok());
  EXPECT_EQ(rstore.Tombstone(sig, 99).code(), StatusCode::kNotFound);

  // The intent is recorded but the file outlives it until compaction.
  EXPECT_TRUE(rstore.Get(sig, 1).ok());
  auto stat = StatStore(root);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(Sum(stat.ValueOrDie()).tombstoned, 1u);
  EXPECT_EQ(Sum(stat.ValueOrDie()).live, 2u);

  auto report = CompactStore(root);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.ValueOrDie().files_removed, 1u);
  EXPECT_EQ(report.ValueOrDie().live_kept, 2u);

  ReleaseStore fresh(root);
  EXPECT_EQ(fresh.Get(sig, 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fresh.List(sig), (std::vector<std::size_t>{0, 2}));
  auto after = StatStore(root);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Sum(after.ValueOrDie()).tombstoned, 0u);
  // A compacted-away id cannot be re-tombstoned (and is never reused: the
  // next put continues past the highest surviving id).
  EXPECT_EQ(fresh.Tombstone(sig, 1).code(), StatusCode::kNotFound);
  auto next = fresh.Put(SampleRelease(sig, domain, "d", 9, 99.0));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.ValueOrDie(), 3u);
}

TEST(ShardedStore, FlatStoreRefusesTombstones) {
  const std::string root = FreshRoot();
  const Domain domain({2, 4});
  auto strategy = IdentityArtifact("flat-tomb", domain);
  ReleaseStore rstore(root);
  ASSERT_TRUE(
      rstore.Put(SampleRelease(strategy->signature, domain, "d", 0, 1.0))
          .ok());
  auto refused = rstore.Tombstone(strategy->signature, 0);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
}

// ---- Adoption of manifest-unknown files

TEST(ShardedStore, CompactionAdoptsUnmanifestedFilesAsLive) {
  const std::string root = FreshRoot();
  const Domain domain({2, 4});
  auto strategy = IdentityArtifact("adopt", domain);
  const std::string sig = strategy->signature;
  const std::string key = serve::StoreKey(sig);
  StoreOptions options;
  options.shards = 2;

  StrategyStore sstore(root, options);
  ASSERT_TRUE(sstore.Put(*strategy).ok());
  ReleaseStore rstore(root, options);
  ASSERT_TRUE(rstore.Put(SampleRelease(sig, domain, "d", 0, 1.0)).ok());

  // Model a put that crashed between the artifact write and the manifest
  // append: a valid release file the manifest has never heard of.
  const StoreLayout layout = StoreLayout::Resolve(root, 0).ValueOrDie();
  const std::string orphan_bytes =
      EncodeReleaseArtifact(SampleRelease(sig, domain, "d", 7, 70.0));
  {
    std::ofstream out(layout.ReleaseDir(key) + "/" + IdFile(5),
                      std::ios::binary | std::ios::trunc);
    out.write(orphan_bytes.data(),
              static_cast<std::streamsize>(orphan_bytes.size()));
    ASSERT_TRUE(out.good());
  }

  auto stat = StatStore(root);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(Sum(stat.ValueOrDie()).unmanifested, 1u);
  // Listing and id allocation already see the file (directory truth).
  EXPECT_EQ(rstore.List(sig), (std::vector<std::size_t>{0, 5}));

  auto report = CompactStore(root);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.ValueOrDie().files_removed, 0u);
  EXPECT_EQ(report.ValueOrDie().live_kept, 2u);

  auto after = StatStore(root);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Sum(after.ValueOrDie()).unmanifested, 0u);
  EXPECT_EQ(Sum(after.ValueOrDie()).live, 2u);
  ReleaseStore fresh(root);
  auto got = fresh.Get(sig, 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(EncodeReleaseArtifact(*got.ValueOrDie()), orphan_bytes);
  auto next = fresh.Put(SampleRelease(sig, domain, "d", 8, 80.0));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.ValueOrDie(), 6u);
}

// ---- Bounded store caches

TEST(StoreCaches, StrategyCacheEvictsAndRereadsByteIdentically) {
  const std::string root = FreshRoot();
  const Domain domain({2, 4});
  StoreOptions options;
  options.strategy_cache_capacity = 2;

  std::vector<std::shared_ptr<const StrategyArtifact>> artifacts;
  std::vector<std::string> expected;
  StrategyStore store(root, options);
  for (int i = 0; i < 3; ++i) {
    artifacts.push_back(IdentityArtifact("s" + std::to_string(i), domain));
    ASSERT_TRUE(store.Put(*artifacts.back()).ok());
    expected.push_back(EncodeStrategyArtifact(*artifacts.back()));
  }
  EXPECT_LE(store.cache_size(), 2u);

  // Cycling 3 keys through a 2-entry cache evicts on every round, and every
  // re-read decodes to the exact artifact that was stored.
  const std::uint64_t before = store.cache_evictions();
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) {
      auto got = store.Get(artifacts[i]->signature);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(EncodeStrategyArtifact(*got.ValueOrDie()), expected[i]);
    }
  }
  EXPECT_GT(store.cache_evictions(), before);
  EXPECT_LE(store.cache_size(), 2u);
}

TEST(StoreCaches, ReleaseCacheEvictsAndRereadsByteIdentically) {
  const std::string root = FreshRoot();
  const Domain domain({2, 4});
  auto strategy = IdentityArtifact("rel-cache", domain);
  const std::string sig = strategy->signature;
  StoreOptions options;
  options.release_cache_capacity = 2;

  ReleaseStore store(root, options);
  std::vector<std::string> expected;
  for (std::uint64_t b = 0; b < 3; ++b) {
    const ReleaseArtifact rel = SampleRelease(sig, domain, "d", b, 3.0 * b);
    ASSERT_TRUE(store.Put(rel).ok());
    expected.push_back(EncodeReleaseArtifact(rel));
  }

  const std::uint64_t before = store.cache_evictions();
  for (int round = 0; round < 3; ++round) {
    for (std::size_t id = 0; id < 3; ++id) {
      auto got = store.Get(sig, id);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(EncodeReleaseArtifact(*got.ValueOrDie()), expected[id]);
    }
  }
  EXPECT_GT(store.cache_evictions(), before);
  EXPECT_LE(store.cache_size(), 2u);
}

/// Readers hammer shared stores whose caches are smaller than the working
/// set, so every round mixes cache hits, evictions and disk re-reads. Runs
/// under TSan in CI: the store mutexes must make the LRU churn race-free,
/// and eviction must never surface a wrong or torn artifact.
TEST(StoreCaches, ConcurrentReadersUnderEvictionChurn) {
  const std::string root = FreshRoot();
  const Domain domain({2, 4});
  StoreOptions options;
  options.strategy_cache_capacity = 2;
  options.release_cache_capacity = 2;

  std::vector<std::string> sigs;
  std::vector<std::string> expected_strategy;
  std::vector<std::string> expected_release;
  {
    StrategyStore seed_s(root, options);
    ReleaseStore seed_r(root, options);
    for (int i = 0; i < 3; ++i) {
      auto strategy = IdentityArtifact("c" + std::to_string(i), domain);
      ASSERT_TRUE(seed_s.Put(*strategy).ok());
      sigs.push_back(strategy->signature);
      expected_strategy.push_back(EncodeStrategyArtifact(*strategy));
      const ReleaseArtifact rel =
          SampleRelease(strategy->signature, domain, "d", 0, 7.0 * i);
      ASSERT_TRUE(seed_r.Put(rel).ok());
      expected_release.push_back(EncodeReleaseArtifact(rel));
    }
  }

  StrategyStore sstore(root, options);
  ReleaseStore rstore(root, options);
  constexpr int kReaders = 4;
  constexpr int kRounds = 12;
  std::vector<int> mismatches(kReaders, 0);
  {
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        for (int round = 0; round < kRounds; ++round) {
          for (std::size_t i = 0; i < sigs.size(); ++i) {
            // Offset per thread so the access orders disagree.
            const std::size_t at =
                (i + static_cast<std::size_t>(t)) % sigs.size();
            auto s = sstore.Get(sigs[at]);
            if (!s.ok() || EncodeStrategyArtifact(*s.ValueOrDie()) !=
                               expected_strategy[at]) {
              ++mismatches[t];
            }
            auto r = rstore.Get(sigs[at], 0);
            if (!r.ok() || EncodeReleaseArtifact(*r.ValueOrDie()) !=
                               expected_release[at]) {
              ++mismatches[t];
            }
          }
        }
      });
    }
    for (auto& reader : readers) reader.join();
  }
  for (int t = 0; t < kReaders; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "reader " << t;
  }
  // 3 keys cycling through 2 slots from 4 threads: eviction churn happened.
  EXPECT_GT(sstore.cache_evictions(), 0u);
  EXPECT_GT(rstore.cache_evictions(), 0u);
  EXPECT_LE(sstore.cache_size(), 2u);
  EXPECT_LE(rstore.cache_size(), 2u);
}

// ---- The LRU cache itself

TEST(LruCache, EvictsLeastRecentlyUsedInExactOrder) {
  util::LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.capacity(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch 1 so 2 becomes least-recently-used; the next insert evicts 2.
  ASSERT_NE(cache.Get(1), nullptr);
  cache.Put(4, 40);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 10);

  // Refreshing an existing key updates in place: no eviction, new value,
  // most-recently-used position.
  cache.Put(3, 33);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(*cache.Get(3), 33);

  // Order is now 3, 1, 4 (MRU first): inserting evicts 4.
  ASSERT_NE(cache.Get(1), nullptr);  // order: 1, 3, 4
  cache.Put(5, 50);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.Get(4), nullptr);
  EXPECT_NE(cache.Get(5), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.size(), 3u);
}

// ---- Answer engine root cache

TEST(AnswerEngineRootCache, EvictionRecomputesBitIdentically) {
  const Domain domain({2, 4});
  auto strategy = IdentityArtifact("roots", domain);
  auto release = std::make_shared<ReleaseArtifact>(
      SampleRelease(strategy->signature, domain, "d", 0, 1.5));

  // Zero capacity is a caller bug, reported not served.
  EXPECT_EQ(AnswerEngine::Create(strategy, release, domain, 0).status().code(),
            StatusCode::kInvalidArgument);

  auto created = AnswerEngine::Create(strategy, release, domain,
                                      /*root_cache_capacity=*/2);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  AnswerEngine engine = std::move(created).ValueOrDie();

  const char* const kTexts[] = {"A1 = 0", "A1 = 1", "A2 = 0", "A2 >= 2"};
  std::vector<query::Predicate> preds;
  for (const char* text : kTexts) {
    auto parsed = query::ParsePredicate(text, domain);
    ASSERT_TRUE(parsed.ok()) << text;
    preds.push_back(std::move(parsed).ValueOrDie());
  }

  // 4 distinct roots through a 2-entry cache: the tail evicts the head.
  std::vector<AnswerEngine::Answer> first;
  for (const auto& pred : preds) first.push_back(engine.AnswerPredicate(pred));
  EXPECT_EQ(engine.root_cache_size(), 2u);
  EXPECT_EQ(engine.root_cache_evictions(), 2u);
  EXPECT_EQ(engine.root_cache_hits(), 0u);

  // Every evicted root recomputes to the same bits — eviction can change
  // latency, never answers.
  for (std::size_t q = 0; q < preds.size(); ++q) {
    const AnswerEngine::Answer again = engine.AnswerPredicate(preds[q]);
    EXPECT_EQ(again.value, first[q].value) << kTexts[q];
    EXPECT_EQ(again.stddev, first[q].stddev) << kTexts[q];
  }
  EXPECT_GT(engine.root_cache_evictions(), 2u);

  // A back-to-back repeat is a pure hit.
  const std::uint64_t hits = engine.root_cache_hits();
  const AnswerEngine::Answer repeat = engine.AnswerPredicate(preds.back());
  EXPECT_EQ(repeat.value, first.back().value);
  EXPECT_EQ(repeat.stddev, first.back().stddev);
  EXPECT_EQ(engine.root_cache_hits(), hits + 1);
}

}  // namespace
}  // namespace dpmm
